#include "src/vprof/service/vprofd.h"

#include <utility>

#include "src/vprof/registry.h"
#include "src/vprof/service/prom.h"

namespace vprof {

namespace {

HarvesterOptions MakeHarvesterOptions(Vprofd* daemon, TimeNs epoch_ns,
                                      void (Vprofd::*handler)(Trace&&)) {
  HarvesterOptions options;
  options.epoch_ns = epoch_ns;
  options.sink = [daemon, handler](Trace&& trace) {
    (daemon->*handler)(std::move(trace));
  };
  return options;
}

}  // namespace

Vprofd::Vprofd(VprofdOptions options)
    : options_(std::move(options)),
      root_(RegisterFunction(options_.root_function)),
      tree_(options_.tree),
      controller_(root_, options_.graph.get(), options_.controller),
      detector_(options_.regression),
      supervisor_(options_.supervisor),
      harvester_(MakeHarvesterOptions(this, options_.epoch_ns,
                                      &Vprofd::HandleEpoch)) {
  // Without a call graph the controller has nothing to descend into; run
  // as a pure aggregator instead of crashing on the first step.
  if (!options_.graph) options_.enable_controller = false;
  if (!options_.history.dir.empty()) {
    store_ = std::make_unique<statstore::StatStore>(options_.history);
  }
}

Vprofd::~Vprofd() { Stop(); }

void Vprofd::Start() {
  if (harvester_.running()) return;
  if (store_ != nullptr && !store_opened_) {
    if (store_->Open()) {
      store_opened_ = true;
      // Resume epoch numbering past whatever a previous process persisted,
      // so the history stays one strictly-increasing stream.
      epoch_base_ = store_->last_epoch();
    } else {
      store_.reset();  // undurable history beats a crashing daemon
    }
  }
  if (options_.enable_controller) controller_.ApplyInstrumentation();
  harvester_.Start();
}

void Vprofd::Stop() {
  harvester_.Stop();
  if (store_ != nullptr) store_->Seal();
}

void Vprofd::HandleEpoch(Trace&& trace) {
  tree_.Fold(trace);
  const OnlineTreeSnapshot snapshot = tree_.Snapshot();
  const uint64_t epoch = epoch_base_ + snapshot.epochs;
  if (options_.enable_regression) {
    ObserveSnapshot(&detector_, snapshot, epoch);
  }
  if (store_ != nullptr) {
    HarvestHealth health;
    health.rotation_gap_last_ns = static_cast<uint64_t>(last_gap_ns());
    health.rotation_gap_max_ns = static_cast<uint64_t>(max_gap_ns());
    health.rotation_gap_total_ns = static_cast<uint64_t>(total_gap_ns());
    statstore::EpochSample sample = SampleFromSnapshot(snapshot, epoch, health);
    // App gauges are shed while degraded/quarantined; the supervisor state
    // itself is always persisted so transitions are visible in the history.
    const bool shed =
        options_.enable_supervisor && supervisor_.shed_app_gauges();
    if (options_.app_gauges && !shed) {
      for (const AppGauge& gauge : options_.app_gauges()) {
        sample.values.push_back({AppSeriesName(gauge.name), gauge.value});
      }
    }
    if (options_.enable_supervisor) {
      sample.values.push_back(
          {"health:supervisor_state",
           static_cast<double>(static_cast<uint8_t>(supervisor_.state()))});
    }
    store_->Append(sample);
  }
  if (options_.enable_supervisor) {
    // The epoch just folded ran under the previous knob settings; observe
    // its health deltas and apply the (possibly new) knobs for the next one.
    EpochHealth health;
    health.rotation_gap_ns = static_cast<uint64_t>(last_gap_ns());
    health.dropped_records = snapshot.dropped_records - prev_dropped_records_;
    prev_dropped_records_ = snapshot.dropped_records;
    health.stuck_threads = snapshot.stuck_threads - prev_stuck_threads_;
    prev_stuck_threads_ = snapshot.stuck_threads;
    if (store_ != nullptr) {
      const uint64_t errors = store_->stats().append_errors;
      health.history_append_errors = errors - prev_append_errors_;
      prev_append_errors_ = errors;
    }
    supervisor_.Observe(health);
    harvester_.set_tracing_enabled(supervisor_.tracing_enabled());
    harvester_.set_epoch_ns(static_cast<TimeNs>(
        static_cast<double>(options_.epoch_ns) *
        supervisor_.epoch_multiplier()));
  }
  if (options_.enable_controller &&
      (!options_.enable_supervisor || supervisor_.controller_enabled())) {
    controller_.Step(snapshot);
  }
}

std::string Vprofd::MetricsText() const {
  const OnlineTreeSnapshot snapshot = Snapshot();
  const ControllerStatus status = controller_status();
  // Every vprof_* family sorts before every vprofd_* family ('_' < 'd'), so
  // concatenating the two sorted blocks keeps the whole text sorted.
  PromWriter w;
  w.Family("vprofd_harvest_epochs_total", "counter",
           "Epochs rotated by the harvester.");
  w.Sample("vprofd_harvest_epochs_total", epochs());
  w.Family("vprofd_rotation_gap_ns", "gauge",
           "Tracing-off time of the latest epoch rotation.");
  w.Sample("vprofd_rotation_gap_ns", static_cast<uint64_t>(last_gap_ns()));
  w.Family("vprofd_rotation_gap_max_ns", "gauge",
           "Worst tracing-off rotation gap seen.");
  w.Sample("vprofd_rotation_gap_max_ns", static_cast<uint64_t>(max_gap_ns()));
  w.Family("vprofd_rotation_gap_total_ns", "counter",
           "Cumulative tracing-off time across all rotations.");
  w.Sample("vprofd_rotation_gap_total_ns",
           static_cast<uint64_t>(total_gap_ns()));
  w.Family("vprofd_controller_steps_total", "counter",
           "Refinement steps taken.");
  w.Sample("vprofd_controller_steps_total", status.steps);
  w.Family("vprofd_controller_expansions_total", "counter",
           "Factors expanded into their callees.");
  w.Sample("vprofd_controller_expansions_total", status.expansions);
  w.Family("vprofd_controller_retirements_total", "counter",
           "Expanded functions retired for low contribution.");
  w.Sample("vprofd_controller_retirements_total", status.retirements);
  w.Family("vprofd_controller_stable_steps", "gauge",
           "Consecutive steps with no instrumentation change.");
  w.Sample("vprofd_controller_stable_steps",
           static_cast<uint64_t>(status.stable_steps));
  w.Family("vprofd_instrumented_probes", "gauge",
           "Probes currently enabled by the controller.");
  w.Sample("vprofd_instrumented_probes",
           static_cast<uint64_t>(status.instrumented.size()));

  if (store_ != nullptr) {
    const statstore::StoreStats hs = store_->stats();
    w.Family("vprofd_history_appends_total", "counter",
             "Epoch samples persisted to the history store.");
    w.Sample("vprofd_history_appends_total", hs.appends);
    w.Family("vprofd_history_append_errors_total", "counter",
             "History appends that failed (IO error / wedged store).");
    w.Sample("vprofd_history_append_errors_total", hs.append_errors);
    w.Family("vprofd_history_bytes_total", "counter",
             "Compressed bytes written to the history store.");
    w.Sample("vprofd_history_bytes_total", hs.bytes_written);
    w.Family("vprofd_history_segments", "gauge",
             "Segment files currently on disk.");
    w.Sample("vprofd_history_segments", store_->segment_count());
    w.Family("vprofd_history_last_epoch", "gauge",
             "Most recent epoch id persisted.");
    w.Sample("vprofd_history_last_epoch", store_->last_epoch());
    w.Family("vprofd_history_persist_ns", "gauge",
             "Write-path latency of the latest epoch append.");
    w.Sample("vprofd_history_persist_ns", hs.last_append_ns);
    w.Family("vprofd_history_persist_max_ns", "gauge",
             "Worst write-path latency of an epoch append.");
    w.Sample("vprofd_history_persist_max_ns", hs.max_append_ns);
  }

  if (options_.app_gauges) {
    w.Family("vprofd_app_gauge", "gauge",
             "Application-published gauges (per-shard lock waits, "
             "group-commit batch sizes).");
    for (const AppGauge& gauge : options_.app_gauges()) {
      w.Sample("vprofd_app_gauge", PromWriter::Labels{{"series", gauge.name}},
               gauge.value);
    }
  }

  if (options_.enable_supervisor) {
    const SupervisorStatus ss = supervisor_.status();
    w.Family("vprofd_supervisor_state", "gauge",
             "Escalation-ladder state (0=normal, 1=degraded, "
             "2=quarantined).");
    w.Sample("vprofd_supervisor_state",
             static_cast<uint64_t>(static_cast<uint8_t>(ss.state)));
    w.Family("vprofd_supervisor_unhealthy_epochs_total", "counter",
             "Epochs whose health deltas exceeded a supervisor threshold.");
    w.Sample("vprofd_supervisor_unhealthy_epochs_total", ss.unhealthy_epochs);
    w.Family("vprofd_supervisor_escalations_total", "counter",
             "Downward ladder transitions (toward quarantine).");
    w.Sample("vprofd_supervisor_escalations_total", ss.escalations);
    w.Family("vprofd_supervisor_restorations_total", "counter",
             "Upward ladder transitions (toward normal).");
    w.Sample("vprofd_supervisor_restorations_total", ss.restorations);
  }

  if (options_.enable_regression) {
    w.Family("vprofd_regression_flags_total", "counter",
             "Contribution-shift regressions flagged.");
    w.Sample("vprofd_regression_flags_total", detector_.flag_count());
    w.Family("vprofd_regression_series", "gauge",
             "Series with an established regression baseline.");
    w.Sample("vprofd_regression_series",
             static_cast<uint64_t>(detector_.series_count()));
    w.Family("vprofd_regression_flag_epoch", "gauge",
             "Epoch of the latest flag per regressed series.");
    w.Family("vprofd_regression_flag_sigmas", "gauge",
             "Shift, in baseline sigmas, of the latest flag per series.");
    for (const statstore::RegressionFlag& flag : detector_.flags()) {
      const PromWriter::Labels labels{{"series", flag.series}};
      w.Sample("vprofd_regression_flag_epoch", labels, flag.epoch);
      w.Sample("vprofd_regression_flag_sigmas", labels, flag.sigmas);
    }
  }
  return snapshot.ToPromText() + w.Text();
}

}  // namespace vprof
