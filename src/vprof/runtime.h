// The VProfiler online runtime: tracing control, per-thread record buffers,
// semantic-interval annotations, and the hooks used by probes and the
// instrumented synchronization primitives.
//
// Concurrency model (the "epoch handshake"): every mutation of a
// ThreadState happens inside a BeginOp/EndOp window, a Dekker-style
// handshake against the control thread. The owner publishes busy_=1
// (seq_cst) and then re-checks g_tracing (seq_cst); the control thread
// stores g_tracing=false (seq_cst) and then spins until busy_==0. Sequential
// consistency guarantees at least one side observes the other, so once
// WaitQuiescent returns, no recording op is in flight and none can start —
// StartTracing can reset buffers and StopTracing can collect them without
// locking the probe hot path. Ops are tiny (no blocking inside a window),
// so the spin is bounded by an append, not by application code.
#ifndef SRC_VPROF_RUNTIME_H_
#define SRC_VPROF_RUNTIME_H_

#include <atomic>
#include <cstdint>

#include "src/fault/failpoint.h"
#include "src/vprof/chunked_buffer.h"
#include "src/vprof/fastclock.h"
#include "src/vprof/registry.h"
#include "src/vprof/trace.h"
#include "src/vprof/types.h"

namespace vprof {

// Maximum nesting depth of simultaneously-open recorded probes on one thread.
inline constexpr int kMaxProbeDepth = 128;

// Fast global flags, read on every probe. Mutate only via Start/StopTracing
// and EnableFullTrace.
extern std::atomic<bool> g_tracing;
extern std::atomic<bool> g_full_trace;

namespace detail {
// True when sys_membarrier(PRIVATE_EXPEDITED) is registered: the handshake
// runs asymmetrically — probes use relaxed stores (no fence instruction) and
// the control thread pays for the StoreLoad ordering with one syscall per
// quiesce. False (no membarrier, or under TSan where the kernel barrier is
// invisible to the race detector) falls back to seq_cst on both sides.
// Set once at static init, before any worker thread can exist.
extern std::atomic<bool> g_asymmetric_quiesce;

// "vprof/probe_wedge" failpoint: parks the calling probe inside its op
// window until the failpoint is disarmed, simulating a thread stuck
// mid-record. Reached only when at least one failpoint is armed.
void MaybeWedgeProbe();
}  // namespace detail

inline bool IsTracing() { return g_tracing.load(std::memory_order_relaxed); }
inline bool IsFullTrace() { return g_full_trace.load(std::memory_order_relaxed); }

// Nanoseconds since the current run's epoch (TSC fast clock; see fastclock.h).
inline TimeNs Now() { return fastclock::NowNs(); }

// All per-thread recording state. One instance per OS thread that touches the
// runtime while tracing; owned by the global runtime, reset between runs.
// Cache-line-aligned so two threads' hot state never shares a line.
class alignas(kCacheLineSize) ThreadState {
 public:
  // Ticket for CloseInvocation: the record's slot (stable — chunks never
  // move) and the run that owns it. `slot == nullptr` means the op lost the
  // handshake (tracing off) and nothing was recorded.
  struct OpenHandle {
    Invocation* slot = nullptr;
    uint64_t epoch = 0;
  };

  explicit ThreadState(ThreadId tid) : tid_(tid) {}

  ThreadId tid() const { return tid_; }
  IntervalId current_sid() const { return current_sid_; }
  uint64_t run_epoch() const { return run_epoch_; }

  // --- probe hooks (hot path, inline) ----------------------------------
  // Opens an invocation record; timestamps internally off the fast clock.
  OpenHandle OpenInvocation(FuncId func) {
    if (!BeginOp()) {
      return OpenHandle{};
    }
    if (fault::AnyActive()) [[unlikely]] {
      detail::MaybeWedgeProbe();
    }
    const TimeNs now = fastclock::NowNs();
    EnsureSegmentOpen(now);
    const uint32_t index = static_cast<uint32_t>(invocations_.size());
    // Uninitialized append: every field is stored below. Under an arena cap
    // the append may land in the scratch slot (record dropped); the slot is
    // still written — and CloseInvocation can write its end — but nothing
    // may link to its never-stored index.
    Invocation* inv = invocations_.AppendUninit();
    const bool dropped = invocations_.size() == index;
    inv->start = now;
    inv->end = -1;
    inv->func = func;
    inv->sid = current_sid_;
    if (depth_ > 0) {
      // Frames past kMaxProbeDepth are not stored; attribute them to the
      // deepest tracked ancestor instead of reading past the stack.
      const int parent =
          depth_ <= kMaxProbeDepth ? depth_ - 1 : kMaxProbeDepth - 1;
      const uint32_t parent_index = stack_[parent].record_index;
      inv->parent = parent_index == kDroppedRecord
                        ? -1
                        : static_cast<int32_t>(parent_index);
    } else {
      inv->parent = -1;
    }
    if (depth_ < kMaxProbeDepth) {
      stack_[depth_] = Frame{func, dropped ? kDroppedRecord : index};
    }
    ++depth_;
    const OpenHandle handle{inv, run_epoch_};
    EndOp();
    return handle;
  }

  void CloseInvocation(OpenHandle handle) {
    if (!BeginOp()) {
      return;
    }
    // Drop the close if tracing restarted underneath the probe scope: the
    // slot belongs to the previous run's arena (possibly recycled already).
    if (handle.epoch == run_epoch_) {
      if (depth_ > 0) {
        --depth_;
      }
      handle.slot->end = fastclock::NowNs();
    }
    EndOp();
  }

  // --- segment / interval transitions ----------------------------------
  // Switches the interval this thread works on behalf of (segment split).
  void SwitchInterval(IntervalId sid, TimeNs now);

  // Marks the thread blocked (lock/condvar/queue). EndBlocked closes the
  // blocked segment, records the wake-up edge, and resumes execution.
  // Nested Begin/End pairs (a condvar wait inside a queue wait, the lock
  // reacquisition after a wait) are counted and only the outermost pair is
  // recorded, keeping segments flat.
  void BeginBlocked(SegmentState state, TimeNs now);
  void EndBlocked(TimeNs now, ThreadId waker_tid, TimeNs waker_time);

  // Splits the current executing segment to attach a created-by edge for a
  // freshly dequeued task (paper's 4-tuple).
  void AttachGeneratorEdge(ThreadId producer_tid, TimeNs enqueue_time, TimeNs now);

  // Records a semantic-interval begin/end annotation on this thread.
  void RecordIntervalEvent(IntervalId sid, IntervalEventKind kind, TimeNs now,
                           IntervalLabel label = kNoLabel);

  // --- run lifecycle (control thread; requires quiescence) --------------
  void ResetForRun(uint64_t run_epoch);
  // Closes any open segment and stitches the chunked buffers out.
  ThreadTrace Collect(TimeNs end_time);
  // Spins until no recording op is in flight on this thread. Must be called
  // after g_tracing was stored false (or before it is stored true), so no
  // new op can win the handshake.
  void WaitQuiescent() const;

  // Bounded variant: gives up after `timeout_ns` and returns false if the
  // owner is still mid-op (wedged or indefinitely preempted).
  bool WaitQuiescentFor(TimeNs timeout_ns) const;

  // Quarantine flag, owned by the control thread (under the runtime mutex).
  // A quarantined thread failed to quiesce: its buffers may be written at
  // any time and its contents may mix runs, so the control thread neither
  // collects nor resets them until the thread is observed quiescent at a
  // later StartTracing.
  bool quarantined() const { return quarantined_; }
  void set_quarantined(bool value) { quarantined_ = value; }

 private:
  // Owner-side half of the epoch handshake; see file header. Returns false
  // (leaving busy_ clear) when tracing is off, i.e. recording must not touch
  // this state because the control thread may be reading it.
  //
  // Asymmetric mode moves the StoreLoad fence off the hot path: the probe
  // issues only plain stores/loads (with a compiler barrier), and the
  // control thread's sys_membarrier forces the ordering on every core
  // before it reads busy_. The acquire load of g_tracing still pairs with
  // StartTracing's release store, so buffer resets happen-before any op
  // that observes tracing on.
  bool BeginOp() {
    if (detail::g_asymmetric_quiesce.load(std::memory_order_relaxed)) {
      busy_.store(1, std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_seq_cst);
      if (g_tracing.load(std::memory_order_acquire)) [[likely]] {
        return true;
      }
    } else {
      busy_.store(1, std::memory_order_seq_cst);
      if (g_tracing.load(std::memory_order_seq_cst)) [[likely]] {
        return true;
      }
    }
    busy_.store(0, std::memory_order_release);
    return false;
  }
  void EndOp() { busy_.store(0, std::memory_order_release); }

  void EnsureSegmentOpen(TimeNs now);
  void CloseSegment(TimeNs now);

  // Sentinel record_index for a stack frame whose invocation record was
  // dropped by the arena cap: descendants must not link to it.
  static constexpr uint32_t kDroppedRecord = 0xFFFFFFFFu;

  // Hot fields, ordered to keep the probe path in the first cache lines.
  std::atomic<uint32_t> busy_{0};
  int depth_ = 0;
  uint64_t run_epoch_ = 0;
  IntervalId current_sid_ = kNoInterval;
  ThreadId tid_;
  int block_depth_ = 0;

  // Open segment (start < 0 when none).
  TimeNs seg_start_ = -1;
  SegmentState seg_state_ = SegmentState::kExecuting;
  IntervalId seg_sid_ = kNoInterval;
  // Pending created-by edge for the segment being opened.
  ThreadId pending_gen_tid_ = kNoThread;
  TimeNs pending_gen_time_ = -1;
  // Waker reported by an inner nested wait, consumed by the outermost
  // EndBlocked.
  ThreadId pending_waker_tid_ = kNoThread;
  TimeNs pending_waker_time_ = -1;

  // Append-only chunked arenas: no reallocation or copying on growth, so a
  // probe never pays a buffer-resize latency spike (see chunked_buffer.h).
  ChunkedBuffer<Invocation> invocations_;
  ChunkedBuffer<Segment> segments_;
  ChunkedBuffer<IntervalEvent> interval_events_;

  bool quarantined_ = false;

  struct Frame {
    FuncId func;
    uint32_t record_index;
  };
  Frame stack_[kMaxProbeDepth];
};

// Returns this thread's state, creating and registering it on first use.
ThreadState* CurrentThread();

// --- run control ----------------------------------------------------------

// Clears all buffers, re-arms the clock epoch, and begins recording.
void StartTracing();

// Stops recording and returns everything captured since StartTracing.
// Returns within the quiesce bound even if a probe thread is wedged mid-op:
// the wedged thread is quarantined (its records dropped, its tid reported in
// Trace::stuck_threads with a stderr diagnostic) and rejoins automatically
// at the first StartTracing that finds it quiescent again.
Trace StopTracing();

// Bounds how long Start/StopTracing wait for an unresponsive probe thread
// before quarantining it. ns <= 0 restores the default (250 ms).
void SetQuiesceTimeoutNs(int64_t ns);

// Caps each per-thread record arena (invocations, segments, interval events
// separately) at `cap` records for subsequent runs; 0 = unbounded.
// Overflowing records are dropped and counted on the resulting Trace.
void SetArenaRecordCap(size_t cap);

// Enables the DTrace-like always-on heavyweight tracer (see full_tracer.h).
// Used only by the overhead-comparison experiment.
void EnableFullTrace(bool enabled);

// --- semantic interval annotations (paper Section 3.1) ---------------------

// Annotation (1): a new semantic interval is created; the calling thread
// starts working on its behalf. Returns the new interval's id. The optional
// label classifies the interval (e.g. transaction type) so the analysis can
// compute per-type profiles.
IntervalId BeginInterval(IntervalLabel label = kNoLabel);

// Annotation (2): the semantic interval is complete. The calling thread
// reverts to background (no-interval) execution.
void EndInterval(IntervalId sid);

// Annotation (3): the calling thread starts executing on behalf of `sid`
// (task-based models; worker dequeues an event for the interval). Passing
// kNoInterval marks the thread as background again.
void WorkOnBehalf(IntervalId sid);

// The interval the calling thread currently works on behalf of.
IntervalId CurrentIntervalId();

// RAII wrapper: begins a semantic interval on construction and ends it on
// destruction. If the thread is already inside an interval, the scope joins
// it (no nested interval is created).
class IntervalScope {
 public:
  explicit IntervalScope(IntervalLabel label = kNoLabel) {
    if (CurrentIntervalId() == kNoInterval) {
      sid_ = BeginInterval(label);
    }
  }
  ~IntervalScope() {
    if (sid_ != kNoInterval) {
      EndInterval(sid_);
    }
  }
  IntervalScope(const IntervalScope&) = delete;
  IntervalScope& operator=(const IntervalScope&) = delete;

  IntervalId id() const { return sid_; }

 private:
  IntervalId sid_ = kNoInterval;
};

}  // namespace vprof

#endif  // SRC_VPROF_RUNTIME_H_
