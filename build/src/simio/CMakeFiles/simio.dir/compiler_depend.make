# Empty compiler generated dependencies file for simio.
# This may be replaced when dependencies are built.
