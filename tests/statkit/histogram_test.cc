#include "src/statkit/histogram.h"

#include <gtest/gtest.h>

#include "src/statkit/distributions.h"
#include "src/statkit/rng.h"

namespace statkit {
namespace {

TEST(LogHistogramTest, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(LogHistogramTest, SingleValueQuantiles) {
  LogHistogram h(1.0, 1e6, 40);
  h.Add(1000.0);
  // Every quantile must land in the bucket containing 1000 (within one
  // bucket's relative width).
  EXPECT_NEAR(h.Quantile(0.5), 1000.0, 1000.0 * 0.12);
  EXPECT_NEAR(h.Quantile(0.99), 1000.0, 1000.0 * 0.12);
}

TEST(LogHistogramTest, ClampsOutOfRangeValues) {
  LogHistogram h(10.0, 1000.0, 10);
  h.Add(1.0);     // below min
  h.Add(1e9);     // above max
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.bucket_value(0), 0u);
  EXPECT_GT(h.bucket_value(h.bucket_count() - 1), 0u);
}

TEST(LogHistogramTest, QuantilesOrdered) {
  Rng rng(77);
  LogHistogram h(1.0, 1e7, 30);
  for (int i = 0; i < 10000; ++i) {
    h.Add(SampleLognormal(rng, 6.0, 1.0));
  }
  const double p50 = h.Quantile(0.50);
  const double p90 = h.Quantile(0.90);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
}

TEST(LogHistogramTest, UniformMedianAccuracy) {
  Rng rng(78);
  LogHistogram h(1.0, 1e5, 50);
  for (int i = 0; i < 50000; ++i) {
    h.Add(100.0 + rng.NextDouble() * 900.0);  // uniform [100, 1000)
  }
  EXPECT_NEAR(h.Quantile(0.5), 550.0, 60.0);
}

TEST(LogHistogramTest, MergeAddsCounts) {
  LogHistogram a(1.0, 1e4, 10);
  LogHistogram b(1.0, 1e4, 10);
  a.Add(10.0);
  b.Add(100.0);
  b.Add(1000.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(LogHistogramTest, ToStringListsNonEmptyBuckets) {
  LogHistogram h(1.0, 100.0, 5);
  h.Add(10.0);
  const std::string s = h.ToString();
  EXPECT_NE(s.find(": 1"), std::string::npos);
}

}  // namespace
}  // namespace statkit
