# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(integration_minidb_profile_test "/root/repo/build/tests/integration/integration_minidb_profile_test")
set_tests_properties(integration_minidb_profile_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;1;vp_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_minipg_profile_test "/root/repo/build/tests/integration/integration_minipg_profile_test")
set_tests_properties(integration_minipg_profile_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;2;vp_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_httpd_profile_test "/root/repo/build/tests/integration/integration_httpd_profile_test")
set_tests_properties(integration_httpd_profile_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;3;vp_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_fixes_test "/root/repo/build/tests/integration/integration_fixes_test")
set_tests_properties(integration_fixes_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;4;vp_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_failure_injection_test "/root/repo/build/tests/integration/integration_failure_injection_test")
set_tests_properties(integration_failure_injection_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;5;vp_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
add_test(integration_per_type_profile_test "/root/repo/build/tests/integration/integration_per_type_profile_test")
set_tests_properties(integration_per_type_profile_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/integration/CMakeLists.txt;6;vp_add_test;/root/repo/tests/integration/CMakeLists.txt;0;")
