# Empty dependencies file for statkit_p2_quantile_test.
# This may be replaced when dependencies are built.
