// Reproduces paper Table 6: key sources of transaction latency variance in
// Postgres (minipg), TPC-C, found via VProfiler.
//
// Paper rows:
//   LWLockAcquireOrWait    76.8%
//   ReleasePredicateLocks   6%
//   ExecProcNode            5%
#include "bench/common.h"

int main() {
  bench::PrintHeader("Table 6 — minipg (Postgres) variance sources, TPC-C");

  minipg::PgEngine engine(bench::PostgresConfig(/*wal_units=*/1));
  vprof::CallGraph graph;
  minipg::PgEngine::RegisterCallGraph(&graph);

  const workload::TpccOptions options = bench::TpccQuick(4, 400);
  workload::TpccDriver driver(nullptr, options);
  const auto run_workload = [&] {
    driver.RunWith(
        [&engine](const minidb::TxnRequest& request) {
          return engine.Execute(request);
        },
        /*warehouses=*/8);
  };
  run_workload();  // warm-up

  vprof::Profiler profiler("exec_simple_query", &graph, run_workload);
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  const vprof::ProfileResult result = profiler.Run(profile_options);

  bench::PrintTopFactors(result, 8);
  std::printf("\n  LWLockAcquireOrWait by call site:\n");
  bench::PrintFunctionCallSites(result, "LWLockAcquireOrWait");
  std::printf("\n  note: contributions above 100%% are legitimate under Eq. 2 —\n"
              "  LWLockAcquireOrWait (waiters) and issue_xlog_fsync (the leader)\n"
              "  are strongly anti-correlated siblings, so each one's variance\n"
              "  exceeds their sum's.\n");
  std::printf("\n  paper: LWLockAcquireOrWait 76.8%%, ReleasePredicateLocks 6%%, "
              "ExecProcNode 5%%\n");
  return 0;
}
