#!/usr/bin/env bash
# One-command verification: the tier-1 build+test cycle, then a
# ThreadSanitizer build of the vprof runtime tests so the lock-free probe
# hot path (epoch handshake, chunked buffers, full-tracer rings) is
# race-checked on every run. Usage: scripts/check.sh [--tsan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

if [[ "${1:-}" != "--tsan-only" ]]; then
  echo "== tier-1: build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"
  (cd build && ctest --output-on-failure -j "${JOBS}")
fi

echo "== tsan: vprof runtime tests =="
cmake -B build-tsan -S . -DVPROF_TSAN=ON >/dev/null
TSAN_TARGETS=(vprof_runtime_test vprof_stress_test vprof_registry_test
              vprof_sync_test vprof_task_queue_test)
cmake --build build-tsan -j "${JOBS}" --target "${TSAN_TARGETS[@]}"
(cd build-tsan &&
 TSAN_OPTIONS="halt_on_error=1" \
 ctest --output-on-failure -R 'vprof_(runtime|stress|registry|sync|task_queue)_test')

echo "== check.sh: all green =="
