file(REMOVE_RECURSE
  "CMakeFiles/minidb_engine_test.dir/engine_test.cc.o"
  "CMakeFiles/minidb_engine_test.dir/engine_test.cc.o.d"
  "minidb_engine_test"
  "minidb_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
