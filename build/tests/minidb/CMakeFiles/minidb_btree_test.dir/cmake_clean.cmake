file(REMOVE_RECURSE
  "CMakeFiles/minidb_btree_test.dir/btree_test.cc.o"
  "CMakeFiles/minidb_btree_test.dir/btree_test.cc.o.d"
  "minidb_btree_test"
  "minidb_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
