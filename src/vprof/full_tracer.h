// A deliberately heavyweight "instrument everything" tracer, standing in for
// DTrace-style binary injection in the Figure 3 overhead comparison.
//
// Every probe — regardless of the selection flags — takes a timestamp, keys
// the event by a hash of the function's *symbol name* (as binary tracers
// do), and appends it to a per-thread ring buffer. The rings are merged only
// at collection time, so the §4.1 comparison measures per-event
// instrumentation cost, not convoying on a global lock: the old
// single-mutex event log serialized every traced call in the process, which
// made VProfiler's advantage look larger than the per-probe work justifies.
// Rings are bounded (generic tracers stream to a consumer; we emulate by
// overwriting the oldest events) and the overwritten count is reported.
#ifndef SRC_VPROF_FULL_TRACER_H_
#define SRC_VPROF_FULL_TRACER_H_

#include <cstdint>
#include <vector>

#include "src/vprof/types.h"

namespace vprof {

struct FullTraceStats {
  uint64_t events = 0;              // total events recorded
  uint64_t dropped = 0;             // of those, overwritten by ring wrap
  uint64_t distinct_functions = 0;  // distinct symbols seen
  uint64_t threads = 0;             // rings (threads) that recorded anything
};

// One entry/exit event. `name_hash` is the symbol key a binary tracer would
// aggregate by; `func` is kept so merged traces remain resolvable.
struct FullTraceEvent {
  uint64_t name_hash = 0;
  TimeNs time = 0;
  FuncId func = kInvalidFunc;
  bool entry = false;
};

// Hot path: called from every probe while full-trace mode is on. Lock-free;
// touches only the calling thread's ring.
void FullTracerOnEntry(FuncId func);
void FullTracerOnExit(FuncId func);

// Aggregate counters across all rings. Reads atomics only; callable any time.
FullTraceStats GetFullTracerStats();

// Merges every thread's ring into one time-ordered event log. Call only
// while no probe is recording (after StopTracing / EnableFullTrace(false)):
// ring slots are plain memory owned by their writer thread.
std::vector<FullTraceEvent> CollectFullTraceEvents();

void ResetFullTracer();

}  // namespace vprof

#endif  // SRC_VPROF_FULL_TRACER_H_
