file(REMOVE_RECURSE
  "CMakeFiles/minipg_predicate_locks_test.dir/predicate_locks_test.cc.o"
  "CMakeFiles/minipg_predicate_locks_test.dir/predicate_locks_test.cc.o.d"
  "minipg_predicate_locks_test"
  "minipg_predicate_locks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipg_predicate_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
