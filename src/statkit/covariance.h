// Dense covariance matrix over a fixed set of co-observed series.
//
// The variance tree needs Var(child_i) for every child of an expanded call
// node and Cov(child_i, child_j) for every sibling pair. CovarianceMatrix
// accumulates the full second-moment matrix of an n-vector in one pass.
#ifndef SRC_STATKIT_COVARIANCE_H_
#define SRC_STATKIT_COVARIANCE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace statkit {

class CovarianceMatrix {
 public:
  explicit CovarianceMatrix(size_t n)
      : n_(n), mean_(n, 0.0), comoment_(n * n, 0.0), delta_(n, 0.0) {}

  size_t dimension() const { return n_; }
  uint64_t count() const { return count_; }

  // Adds one observation vector; x.size() must equal dimension().
  void Add(std::span<const double> x) {
    ++count_;
    const double n = static_cast<double>(count_);
    for (size_t i = 0; i < n_; ++i) {
      delta_[i] = x[i] - mean_[i];
      mean_[i] += delta_[i] / n;
    }
    // comoment += delta_pre * delta_post^T, accumulated symmetrically.
    for (size_t i = 0; i < n_; ++i) {
      const double post_i = x[i] - mean_[i];
      for (size_t j = 0; j <= i; ++j) {
        const double update = delta_[j] * post_i;
        comoment_[i * n_ + j] += update;
        if (i != j) {
          comoment_[j * n_ + i] += update;
        }
      }
    }
  }

  double mean(size_t i) const { return mean_[i]; }

  // Population covariance of series i and j.
  double Covariance(size_t i, size_t j) const {
    return count_ > 0 ? comoment_[i * n_ + j] / static_cast<double>(count_) : 0.0;
  }

  // Population variance of series i.
  double Variance(size_t i) const { return Covariance(i, i); }

  // Variance of the sum of all series: sum Var + 2 * sum_{i<j} Cov. This is
  // the quantity Equation (2) of the paper decomposes.
  double VarianceOfSum() const {
    double total = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = 0; j < n_; ++j) {
        total += Covariance(i, j);
      }
    }
    return total;
  }

 private:
  size_t n_;
  uint64_t count_ = 0;
  std::vector<double> mean_;
  std::vector<double> comoment_;  // row-major n x n
  std::vector<double> delta_;     // scratch: pre-update deltas
};

}  // namespace statkit

#endif  // SRC_STATKIT_COVARIANCE_H_
