# Empty compiler generated dependencies file for vprof_flat_profile_test.
# This may be replaced when dependencies are built.
