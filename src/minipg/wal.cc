#include "src/minipg/wal.h"

#include <algorithm>

#include "src/vprof/probe.h"

namespace minipg {

namespace {
constexpr uint64_t kWalBlockBytes = 8192;
}  // namespace

WalUnit::WalUnit(const simio::DiskConfig& disk_config) : disk_(disk_config) {}

uint64_t WalUnit::Insert(uint64_t bytes) {
  VPROF_FUNC("XLogInsert");
  pending_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.inserts;
  }
  return next_lsn_.fetch_add(bytes, std::memory_order_acq_rel) + bytes - 1;
}

bool WalUnit::AcquireOrWait(uint64_t lsn) {
  VPROF_FUNC("LWLockAcquireOrWait");
  std::lock_guard<vprof::Mutex> lock(mu_);
  if (!write_lock_held_) {
    write_lock_held_ = true;
    return true;
  }
  // Someone is flushing: sleep until they release, then tell the caller to
  // re-check whether its LSN became durable (Postgres semantics).
  waiters_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.flush_waits;
  }
  while (write_lock_held_ &&
         flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    released_cv_.WaitFor(mu_, 50LL * 1000 * 1000);
  }
  waiters_.fetch_sub(1, std::memory_order_relaxed);
  if (!write_lock_held_ &&
      flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    // Lock free and our data still not durable: take it.
    write_lock_held_ = true;
    return true;
  }
  return false;
}

void WalUnit::ReleaseAndWake() {
  {
    std::lock_guard<vprof::Mutex> lock(mu_);
    write_lock_held_ = false;
  }
  released_cv_.NotifyAll();
}

void WalUnit::Flush(uint64_t lsn) {
  VPROF_FUNC("XLogFlush");
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.flush_calls;
  }
  while (flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    if (!AcquireOrWait(lsn)) {
      continue;  // re-check the flushed position
    }
    // We hold the write lock: write out everything inserted so far.
    const uint64_t target = next_lsn_.load(std::memory_order_acquire) - 1;
    const uint64_t bytes = pending_bytes_.exchange(0, std::memory_order_acq_rel);
    {
      VPROF_FUNC("issue_xlog_fsync");
      if (bytes > 0) {
        disk_.Write(((bytes + kWalBlockBytes - 1) / kWalBlockBytes) *
                    kWalBlockBytes);
      }
      disk_.Fsync();
    }
    flushed_lsn_.store(target, std::memory_order_release);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.flushes_performed;
    }
    ReleaseAndWake();
  }
}

WalStats WalUnit::stats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  return stats_;
}

Wal::Wal(int units, const simio::DiskConfig& disk_config) {
  for (int i = 0; i < std::max(1, units); ++i) {
    simio::DiskConfig config = disk_config;
    config.seed = disk_config.seed + static_cast<uint64_t>(i) * 7919;
    units_.push_back(std::make_unique<WalUnit>(config));
  }
}

Wal::Position Wal::Insert(uint64_t bytes) {
  int best = 0;
  int best_waiters = units_[0]->waiters();
  for (int i = 1; i < unit_count(); ++i) {
    const int w = units_[static_cast<size_t>(i)]->waiters();
    if (w < best_waiters) {
      best = i;
      best_waiters = w;
    }
  }
  return InsertAt(best, bytes);
}

Wal::Position Wal::InsertAt(int unit, uint64_t bytes) {
  Position position;
  position.unit = unit;
  position.lsn = units_[static_cast<size_t>(unit)]->Insert(bytes);
  return position;
}

void Wal::Flush(const Position& position) {
  units_[static_cast<size_t>(position.unit)]->Flush(position.lsn);
}

}  // namespace minipg
