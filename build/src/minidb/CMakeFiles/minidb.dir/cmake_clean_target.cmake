file(REMOVE_RECURSE
  "libminidb.a"
)
