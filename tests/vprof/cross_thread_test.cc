// Variance-tree attribution across threads: waker execution, queue handoffs,
// and the coverage rule, validated end-to-end on hand-built traces.
#include <gtest/gtest.h>

#include "src/vprof/analysis/variance_tree.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

NodeId FindNodeByLabel(const VarianceAnalysis& va, const std::string& label) {
  for (size_t i = 0; i < va.node_count(); ++i) {
    if (va.NodeLabel(static_cast<NodeId>(i)) == label) {
      return static_cast<NodeId>(i);
    }
  }
  return -1;
}

TEST(CrossThreadAttributionTest, WakerFunctionsChargedToBlockedInterval) {
  // Interval 1 on thread 0 blocks (no covering invocation) for [100,500] on
  // a lock released by thread 1, which spends that time in "holder_work"
  // on behalf of another interval. holder_work must appear in interval 1's
  // tree and carry its per-interval variance.
  TraceBuilder tb;
  const std::vector<TimeNs> hold = {100, 400, 250, 350};
  for (size_t i = 0; i < hold.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 100000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs wake = base + 100 + hold[i];
    const TimeNs end = wake + 50;
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, base + 100)
        .Blocked(0, sid, base + 100, wake, /*waker=*/1, /*waker_time=*/wake)
        .Exec(0, sid, wake, end);
    tb.Exec(1, 1000 + sid, base, wake);
    tb.Invoke(1, "holder_work", base + 100, wake, -1, 1000 + sid);
  }
  const Trace trace = tb.Build();
  VarianceAnalysis va(trace);
  const NodeId holder = FindNodeByLabel(va, "holder_work");
  ASSERT_GE(holder, 0);
  // Mean attributed time = mean hold duration.
  EXPECT_NEAR(va.NodeMean(holder), 275.0, 1e-9);
  EXPECT_GT(va.NodeVariance(holder), 0.0);
  // The latency is 150 + hold, so holder_work explains ~all the variance.
  EXPECT_NEAR(va.NodeContribution(holder), 1.0, 1e-6);
}

TEST(CrossThreadAttributionTest, CoveredBlockRemainsWithWaitFunction) {
  // Same shape, but the blocked span on thread 0 is covered by an
  // instrumented wait function: attribution must stay with the wait
  // function, not jump to the waker.
  TraceBuilder tb;
  const std::vector<TimeNs> hold = {100, 400};
  for (size_t i = 0; i < hold.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 100000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs wake = base + 100 + hold[i];
    const TimeNs end = wake + 50;
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, base + 100)
        .Blocked(0, sid, base + 100, wake, 1, wake)
        .Exec(0, sid, wake, end);
    tb.Invoke(0, "my_wait", base + 100, wake, -1, sid);
    tb.Exec(1, 1000 + sid, base, wake);
    tb.Invoke(1, "holder_work2", base + 100, wake, -1, 1000 + sid);
  }
  const Trace trace = tb.Build();
  VarianceAnalysis va(trace);
  const NodeId wait_node = FindNodeByLabel(va, "my_wait");
  ASSERT_GE(wait_node, 0);
  EXPECT_NEAR(va.NodeMean(wait_node), 250.0, 1e-9);
  // The waker's function receives no attributed time on this interval
  // (its node exists in the table but stays empty).
  const NodeId holder = FindNodeByLabel(va, "holder_work2");
  if (holder >= 0) {
    EXPECT_DOUBLE_EQ(va.NodeMean(holder), 0.0);
    EXPECT_DOUBLE_EQ(va.NodeVariance(holder), 0.0);
  }
}

TEST(CrossThreadAttributionTest, QueueHandoffAttributesProducerAndConsumer) {
  // Producer (thread 0) begins the interval, works 100ns, enqueues; consumer
  // (thread 1) dequeues after a 40ns queue wait, works, ends the interval.
  TraceBuilder tb;
  for (int i = 0; i < 3; ++i) {
    const TimeNs base = i * 100000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs enq = base + 100;
    const TimeNs deq = enq + 40;
    const TimeNs end = deq + 200 + i * 50;
    tb.Begin(0, sid, base).End(1, sid, end);
    tb.Exec(0, sid, base, enq);
    tb.Invoke(0, "producer_side", base, enq, -1, sid);
    tb.ExecGenerated(1, sid, deq, end, /*producer=*/0, /*enqueue_time=*/enq);
    tb.Invoke(1, "consumer_side", deq, end, -1, sid);
  }
  const Trace trace = tb.Build();
  VarianceAnalysis va(trace);
  const NodeId producer = FindNodeByLabel(va, "producer_side");
  const NodeId consumer = FindNodeByLabel(va, "consumer_side");
  ASSERT_GE(producer, 0);
  ASSERT_GE(consumer, 0);
  EXPECT_NEAR(va.NodeMean(producer), 100.0, 1e-9);
  EXPECT_NEAR(va.NodeMean(consumer), 250.0, 1e-9);
  // Queue wait is accounted and identical across intervals.
  EXPECT_NEAR(va.total_queue_wait_ns() / 3.0, 40.0, 1e-9);
  // All variance comes from the consumer side.
  EXPECT_NEAR(va.NodeContribution(consumer), 1.0, 1e-6);
  EXPECT_NEAR(va.NodeVariance(producer), 0.0, 1e-9);
}

}  // namespace
}  // namespace vprof
