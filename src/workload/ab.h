// ApacheBench-style closed-loop HTTP client driver (the paper's Section 4.7
// workload: N concurrent clients fetching a small static page).
#ifndef SRC_WORKLOAD_AB_H_
#define SRC_WORKLOAD_AB_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/httpd/server.h"

namespace workload {

struct AbOptions {
  int clients = 8;
  int requests_per_client = 250;
  double think_time_us = 0.0;
  uint64_t seed = 77;
};

struct AbResult {
  std::vector<double> latencies_ns;  // served (200) requests only
  uint64_t completed = 0;
  uint64_t rejected = 0;  // shed by the server with 503
  double duration_s = 0.0;
  double requests_per_s = 0.0;
};

class AbDriver {
 public:
  AbDriver(httpd::HttpServer* server, const AbOptions& options);

  AbResult Run();

  // Open-ended variant for long-running servers: clients keep issuing
  // requests until `stop` becomes true; requests_per_client is ignored.
  AbResult RunUntil(const std::atomic<bool>& stop);

 private:
  AbResult RunLoop(const std::atomic<bool>* stop);

  httpd::HttpServer* server_;
  AbOptions options_;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_AB_H_
