file(REMOVE_RECURSE
  "libminipg.a"
)
