// Bucket brigades: ordered lists of data buckets flowing through the filter
// chain, allocated from a connection's BucketAllocator.
#ifndef SRC_HTTPD_BRIGADE_H_
#define SRC_HTTPD_BRIGADE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/httpd/bucket_alloc.h"

namespace httpd {

enum class BucketType {
  kHeap,  // response bytes
  kFile,  // sendfile-style file reference
  kEos,   // end of stream
};

struct Bucket {
  BucketType type = BucketType::kHeap;
  uint64_t bytes = 0;
};

// A brigade owns its buckets' allocations: every Append takes one block from
// the allocator and Clear/dtor return them.
class Brigade {
 public:
  explicit Brigade(BucketAllocator* allocator) : allocator_(allocator) {}

  ~Brigade() { Clear(); }

  Brigade(const Brigade&) = delete;
  Brigade& operator=(const Brigade&) = delete;

  void Append(BucketType type, uint64_t bytes) {
    allocator_->Alloc();
    buckets_.push_back(Bucket{type, bytes});
  }

  void Clear() {
    for (size_t i = 0; i < buckets_.size(); ++i) {
      allocator_->Free();
    }
    buckets_.clear();
  }

  const std::vector<Bucket>& buckets() const { return buckets_; }

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const Bucket& b : buckets_) {
      total += b.bytes;
    }
    return total;
  }

  BucketAllocator* allocator() { return allocator_; }

 private:
  BucketAllocator* allocator_;
  std::vector<Bucket> buckets_;
};

}  // namespace httpd

#endif  // SRC_HTTPD_BRIGADE_H_
