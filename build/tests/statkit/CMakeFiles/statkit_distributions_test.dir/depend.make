# Empty dependencies file for statkit_distributions_test.
# This may be replaced when dependencies are built.
