#include "src/minidb/engine.h"

#include <algorithm>
#include <chrono>

#include "src/vprof/probe.h"
#include "src/vprof/runtime.h"

namespace minidb {

namespace {

constexpr uint32_t kWarehouseTableId = 1;
constexpr uint32_t kDistrictTableId = 2;
constexpr uint32_t kCustomerTableId = 3;
constexpr uint32_t kStockTableId = 4;
constexpr uint32_t kOrdersTableId = 5;
constexpr uint32_t kOrderLinesTableId = 6;
constexpr uint32_t kHistoryTableId = 7;

constexpr uint64_t kRedoBytesPerUpdate = 160;
constexpr uint64_t kRedoBytesPerInsert = 220;

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Engine::Engine(const EngineConfig& config)
    : config_(config),
      data_disk_(config.data_disk),
      log_disk_(config.log_disk),
      locks_(config.lock_scheduling, config.lock_wait_timeout_ns,
             config.deadlock_detection, config.lock_shards,
             config.lock_shard_range_bits) {
  pool_ = std::make_unique<BufferPool>(
      config.buffer_pool_pages, config.buffer_policy,
      config.llu_try_iterations, &data_disk_, config.buffer_pool_instances);
  log_ = std::make_unique<RedoLog>(config.flush_policy, &log_disk_,
                                   config.log_flusher_period_us,
                                   config.commit_mode);
  warehouse_ = std::make_unique<Table>("warehouse", kWarehouseTableId, 4, pool_.get());
  district_ = std::make_unique<Table>("district", kDistrictTableId, 4, pool_.get());
  customer_ = std::make_unique<Table>("customer", kCustomerTableId, 16, pool_.get());
  stock_ = std::make_unique<Table>("stock", kStockTableId, 16, pool_.get());
  orders_ = std::make_unique<Table>("orders", kOrdersTableId, 16, pool_.get());
  order_lines_ = std::make_unique<Table>("order_lines", kOrderLinesTableId, 32, pool_.get());
  history_ = std::make_unique<Table>("history", kHistoryTableId, 32, pool_.get());
  LoadInitialData();
}

void Engine::LoadInitialData() {
  for (int w = 0; w < config_.warehouses; ++w) {
    warehouse_->LoadRow(w);
    for (int d = 0; d < kDistrictsPerWarehouse; ++d) {
      district_->LoadRow(DistrictKey(w, d));
      for (int64_t c = 0; c < kCustomersPerDistrict; ++c) {
        customer_->LoadRow(CustomerKey(w, d, c));
      }
    }
    for (int64_t item = 0; item < kItemsPerWarehouse; ++item) {
      stock_->LoadRow(StockKey(w, item));
    }
  }
}

bool Engine::AcquireLock(Transaction* trx, uint64_t object_id, LockMode mode) {
  switch (locks_.LockEx(trx, object_id, mode)) {
    case LockResult::kGranted:
      return true;
    case LockResult::kTimeout:
      trx->set_error(TxnError::kLockTimeout);
      return false;
    case LockResult::kDeadlock:
      trx->set_error(TxnError::kDeadlock);
      return false;
  }
  return false;
}

bool Engine::AppendRedo(Transaction* trx, uint64_t bytes) {
  if (log_->Append(bytes) == 0) {
    if (log_->shutdown()) {
      trx->set_error(TxnError::kShutdown);
    } else if (log_->wedged()) {
      trx->set_error(TxnError::kLogWedged);
    } else {
      trx->set_error(TxnError::kLogCrashed);
    }
    return false;
  }
  return true;
}

bool Engine::RowSelect(Transaction* trx, Table& table, int64_t key,
                       LockMode mode) {
  VPROF_FUNC("row_sel");
  if (!AcquireLock(trx, table.LockObjectId(key), mode)) {
    return false;
  }
  const auto found = table.index().Search(key);
  if (!found.has_value()) {
    return true;  // absent row: a no-op read, not an error
  }
  return table.ReadRow(key, nullptr);
}

bool Engine::RowUpdate(Transaction* trx, Table& table, int64_t key) {
  VPROF_FUNC("row_upd");
  if (!AcquireLock(trx, table.LockObjectId(key), LockMode::kExclusive)) {
    return false;
  }
  const auto found = table.index().Search(key);
  if (!found.has_value()) {
    return true;
  }
  if (!table.UpdateRow(key)) {
    return true;
  }
  return AppendRedo(trx, kRedoBytesPerUpdate);
}

bool Engine::RowInsert(Transaction* trx, Table& table, int64_t key) {
  VPROF_FUNC("row_ins_clust_index_entry_low");
  if (!AcquireLock(trx, table.LockObjectId(key), LockMode::kExclusive)) {
    return false;
  }
  // Uniqueness probe, then the actual insert — the varying code paths of the
  // index mutation are this function's inherent variance (Table 4).
  const auto existing = table.index().Search(key);
  if (existing.has_value()) {
    return true;
  }
  if (!table.InsertRow(key)) {
    return true;
  }
  return AppendRedo(trx, kRedoBytesPerInsert);
}

bool Engine::Commit(Transaction* trx, bool needs_log_flush) {
  VPROF_FUNC("trx_commit");
  if (needs_log_flush) {
    const uint64_t lsn = log_->next_lsn() - 1;
    switch (log_->CommitUpTo(lsn)) {
      case LogStatus::kOk:
        break;
      case LogStatus::kIoError:
        trx->set_error(TxnError::kIoError);
        return false;
      case LogStatus::kWedged:
        trx->set_error(TxnError::kLogWedged);
        return false;
      case LogStatus::kCrashed:
        trx->set_error(TxnError::kLogCrashed);
        return false;
      case LogStatus::kShutdown:
        trx->set_error(TxnError::kShutdown);
        return false;
    }
  }
  // The log acked: apply the transaction's balance transfers while its X
  // locks are still held, so the movement is all-or-nothing with respect to
  // every other committer and never happens for aborts.
  for (const PendingDelta& d : trx->pending_deltas()) {
    d.table->ApplyDelta(d.key, d.delta);
  }
  locks_.ReleaseAll(trx);
  committed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Engine::Abort(Transaction* trx) {
  trx->MarkAborted();
  locks_.ReleaseAll(trx);
  aborted_.fetch_add(1, std::memory_order_relaxed);
}

// Lock acquisition follows one global table order across all transaction
// types (stock < customer < district < warehouse < orders < order_lines <
// history), which makes the workload deadlock-free. The hot locks (district,
// warehouse) are acquired *after* the variable-length per-item work, so
// transactions reach the contended queues at heterogeneous ages — the regime
// in which VATS's oldest-first grant policy pays off (paper Section 4.5).
bool Engine::RunNewOrder(Transaction* trx, const TxnRequest& request) {
  // Stock rows first, in ascending key order.
  std::vector<int64_t> items = request.items;
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  for (int64_t item : items) {
    const int64_t key = StockKey(request.warehouse, item);
    // SELECT ... FOR UPDATE: take the exclusive lock up front; a shared
    // lock followed by an upgrade would deadlock against a concurrent
    // NewOrder on the same item.
    if (!RowSelect(trx, *stock_, key, LockMode::kExclusive)) {
      return false;
    }
    if (!RowUpdate(trx, *stock_, key)) {
      return false;
    }
  }
  const int64_t district_key = DistrictKey(request.warehouse, request.district);
  if (!RowUpdate(trx, *district_, district_key)) {
    return false;
  }
  // Zero-sum transfer: each ordered item moves value from its (X-locked)
  // stock row into the district row, also X-locked above.
  for (int64_t item : items) {
    const int64_t unit_value = 10 + (item % 90);
    trx->AddDelta(stock_.get(), StockKey(request.warehouse, item), -unit_value);
    trx->AddDelta(district_.get(), district_key, unit_value);
  }
  if (!RowSelect(trx, *warehouse_, request.warehouse, LockMode::kShared)) {
    return false;
  }
  const int64_t order_key = next_order_key_.fetch_add(1, std::memory_order_relaxed);
  if (!RowInsert(trx, *orders_, order_key)) {
    return false;
  }
  for (size_t line = 0; line < items.size(); ++line) {
    if (!RowInsert(trx, *order_lines_,
                   order_key * 16 + static_cast<int64_t>(line))) {
      return false;
    }
  }
  return true;
}

bool Engine::RunPayment(Transaction* trx, const TxnRequest& request) {
  const int64_t customer_key =
      CustomerKey(request.warehouse, request.district, request.customer);
  // FOR UPDATE: avoid the shared->exclusive upgrade deadlock.
  if (!RowSelect(trx, *customer_, customer_key, LockMode::kExclusive)) {
    return false;
  }
  if (!RowUpdate(trx, *customer_, customer_key)) {
    return false;
  }
  if (!RowUpdate(trx, *district_,
                 DistrictKey(request.warehouse, request.district))) {
    return false;
  }
  if (!RowUpdate(trx, *warehouse_, request.warehouse)) {
    return false;
  }
  // Zero-sum transfer: the customer pays the warehouse. Both rows are
  // X-locked by the updates above.
  const int64_t amount = 100 + request.customer % 400;
  trx->AddDelta(customer_.get(), customer_key, -amount);
  trx->AddDelta(warehouse_.get(), request.warehouse, amount);
  const int64_t history_key =
      next_history_key_.fetch_add(1, std::memory_order_relaxed);
  return RowInsert(trx, *history_, history_key);
}

bool Engine::RunOrderStatus(Transaction* trx, const TxnRequest& request) {
  const int64_t customer_key =
      CustomerKey(request.warehouse, request.district, request.customer);
  if (!RowSelect(trx, *customer_, customer_key, LockMode::kShared)) {
    return false;
  }
  // Scan this customer's recent orders (approximation: the latest orders).
  const int64_t latest = next_order_key_.load(std::memory_order_relaxed);
  std::lock_guard<vprof::Mutex> latch(orders_->index_latch());
  const auto rows = orders_->index().Range(std::max<int64_t>(1, latest - 20), latest);
  (void)rows;
  return true;
}

bool Engine::RunDelivery(Transaction* trx, const TxnRequest& request) {
  // Deliver a recent order: update the customer's balance, then the order
  // (customer precedes orders in the global lock order).
  const int64_t customer_key =
      CustomerKey(request.warehouse, request.district, request.customer);
  if (!RowUpdate(trx, *customer_, customer_key)) {
    return false;
  }
  const int64_t latest = next_order_key_.load(std::memory_order_relaxed);
  if (latest > 1) {
    const int64_t order_key =
        std::max<int64_t>(1, latest - 1 - (request.customer % 16));
    if (!RowUpdate(trx, *orders_, order_key)) {
      return false;
    }
  }
  return true;
}

bool Engine::RunStockLevel(Transaction* trx, const TxnRequest& request) {
  for (int64_t item : request.items) {
    if (!RowSelect(trx, *stock_, StockKey(request.warehouse, item),
                   LockMode::kShared)) {
      return false;
    }
  }
  return true;
}

TxnOutcome Engine::Execute(const TxnRequest& request) {
  VPROF_FUNC("run_transaction");
  if (stopped_.load(std::memory_order_acquire)) {
    return TxnOutcome{false, 0, TxnError::kShutdown};
  }
  // Each transaction is its own semantic interval — unless the caller is
  // already executing inside one (a multi-tier request, paper Section 5), in
  // which case the transaction joins the enclosing interval.
  const bool enclosed = vprof::CurrentIntervalId() != vprof::kNoInterval;
  // The interval label is the transaction type (+1; 0 means untyped), so
  // the analysis can compute per-transaction-type variance profiles.
  const vprof::IntervalId sid =
      enclosed ? vprof::kNoInterval
               : vprof::BeginInterval(
                     static_cast<vprof::IntervalLabel>(request.type) + 1);

  Transaction trx(next_trx_id_.fetch_add(1, std::memory_order_relaxed),
                  MonotonicNowNs());
  bool ok = false;
  bool needs_log_flush = true;
  switch (request.type) {
    case TxnType::kNewOrder:
      ok = RunNewOrder(&trx, request);
      break;
    case TxnType::kPayment:
      ok = RunPayment(&trx, request);
      break;
    case TxnType::kOrderStatus:
      ok = RunOrderStatus(&trx, request);
      needs_log_flush = false;
      break;
    case TxnType::kDelivery:
      ok = RunDelivery(&trx, request);
      break;
    case TxnType::kStockLevel:
      ok = RunStockLevel(&trx, request);
      needs_log_flush = false;
      break;
  }

  if (ok) {
    ok = Commit(&trx, needs_log_flush);
  }
  if (!ok) {
    Abort(&trx);
  }
  if (!enclosed) {
    vprof::EndInterval(sid);
  }
  return TxnOutcome{ok, trx.id(), ok ? TxnError::kNone : trx.error()};
}

void Engine::Stop() {
  // Gate first so no new transaction starts a commit, then drain the log:
  // committers already past the gate elect leaders and flush normally, and
  // the log's own final flush lands whatever batch remains.
  stopped_.store(true, std::memory_order_release);
  log_->Shutdown();
}

int64_t Engine::BalanceTotal() const {
  return warehouse_->SumBalances() + district_->SumBalances() +
         customer_->SumBalances() + stock_->SumBalances() +
         orders_->SumBalances() + order_lines_->SumBalances() +
         history_->SumBalances();
}

uint64_t Engine::StateDigest() const {
  // Mix each table with a distinct multiplier so swapping identical rows
  // between tables cannot cancel out.
  uint64_t digest = 0;
  const Table* tables[] = {warehouse_.get(), district_.get(), customer_.get(),
                           stock_.get(),     orders_.get(),   order_lines_.get(),
                           history_.get()};
  uint64_t salt = 0x9E3779B97F4A7C15ull;
  for (const Table* table : tables) {
    digest ^= table->StateDigest() * salt;
    salt = salt * 6364136223846793005ull + 1442695040888963407ull;
  }
  return digest;
}

void Engine::RegisterCallGraph(vprof::CallGraph* graph) {
  graph->AddEdge("run_transaction", "row_sel");
  graph->AddEdge("run_transaction", "row_upd");
  graph->AddEdge("run_transaction", "row_ins_clust_index_entry_low");
  graph->AddEdge("run_transaction", "trx_commit");
  graph->AddEdge("row_sel", "lock_rec_lock");
  graph->AddEdge("row_sel", "btr_cur_search_to_nth_level");
  graph->AddEdge("row_sel", "buf_page_get");
  graph->AddEdge("row_upd", "lock_rec_lock");
  graph->AddEdge("row_upd", "btr_cur_search_to_nth_level");
  graph->AddEdge("row_upd", "buf_page_get");
  graph->AddEdge("row_ins_clust_index_entry_low", "lock_rec_lock");
  graph->AddEdge("row_ins_clust_index_entry_low", "btr_cur_search_to_nth_level");
  graph->AddEdge("row_ins_clust_index_entry_low", "buf_page_get");
  graph->AddEdge("lock_rec_lock", "os_event_wait");
  graph->AddEdge("buf_page_get", "buf_pool_mutex_enter");
  graph->AddEdge("trx_commit", "log_write_up_to");
  graph->AddEdge("trx_commit", "lock_release");
  graph->AddEdge("log_write_up_to", "fil_flush");
}

std::unique_ptr<vprof::Vprofd> Engine::StartOnlineProfiler(
    vprof::VprofdOptions options) {
  if (options.root_function.empty()) {
    options.root_function = "run_transaction";
  }
  if (options.graph == nullptr) {
    auto graph = std::make_shared<vprof::CallGraph>();
    RegisterCallGraph(graph.get());
    options.graph = std::move(graph);
  }
  auto daemon = std::make_unique<vprof::Vprofd>(std::move(options));
  daemon->Start();
  return daemon;
}

std::vector<vprof::AppGauge> Engine::ScaleGauges() const {
  std::vector<vprof::AppGauge> gauges;
  for (int i = 0; i < pool_->instances(); ++i) {
    const BufferPoolStats s = pool_->shard_stats(i);
    const std::string prefix = "minidb.buf_pool.shard" + std::to_string(i);
    gauges.push_back(
        {prefix + ".mutex_waits", static_cast<double>(s.mutex_waits)});
    gauges.push_back(
        {prefix + ".mutex_wait_ns", static_cast<double>(s.mutex_wait_ns)});
  }
  for (int i = 0; i < locks_.shard_count(); ++i) {
    const LockStats lk = locks_.ShardStats(i);
    if (lk.waits == 0 && lk.wait_ns == 0) {
      continue;  // keep the gauge set sparse; most shards stay cold
    }
    const std::string prefix = "minidb.lock.shard" + std::to_string(i);
    gauges.push_back({prefix + ".waits", static_cast<double>(lk.waits)});
    gauges.push_back({prefix + ".wait_ns", static_cast<double>(lk.wait_ns)});
  }
  const RedoLogStats ls = log_->stats();
  const uint64_t flushes = ls.leader_flushes + ls.background_flushes;
  gauges.push_back(
      {"minidb.redo.commit_waits", static_cast<double>(ls.commit_waits)});
  gauges.push_back(
      {"minidb.redo.batch_records_avg",
       flushes > 0 ? static_cast<double>(ls.batched_records) /
                         static_cast<double>(flushes)
                   : 0.0});
  return gauges;
}

std::vector<vprof::AppGauge> Engine::RobustnessGauges() const {
  const LockStats lk = locks_.stats();
  const RedoLogStats ls = log_->stats();
  std::vector<vprof::AppGauge> gauges;
  gauges.push_back(
      {"minidb.lock.timeouts", static_cast<double>(lk.timeouts)});
  gauges.push_back(
      {"minidb.lock.deadlocks", static_cast<double>(lk.deadlocks)});
  gauges.push_back(
      {"minidb.redo.io_errors", static_cast<double>(ls.io_errors)});
  gauges.push_back({"minidb.redo.wedges", static_cast<double>(ls.wedges)});
  gauges.push_back({"minidb.redo.crashes", static_cast<double>(ls.crashes)});
  gauges.push_back(
      {"minidb.txn.committed", static_cast<double>(committed_count())});
  gauges.push_back(
      {"minidb.txn.aborted", static_cast<double>(aborted_count())});
  return gauges;
}

}  // namespace minidb
