file(REMOVE_RECURSE
  "../bench/table2_effort"
  "../bench/table2_effort.pdb"
  "CMakeFiles/table2_effort.dir/table2_effort.cc.o"
  "CMakeFiles/table2_effort.dir/table2_effort.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
