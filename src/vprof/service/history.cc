#include "src/vprof/service/history.h"

namespace vprof {

std::string NodeSeriesName(const std::string& path, const char* field) {
  return "node:" + path + ":" + field;
}

std::string AppSeriesName(const std::string& name) { return "app:" + name; }

std::string TierSeriesName(const std::string& tier, const char* field) {
  return "tier:" + tier + ":" + field;
}

statstore::EpochSample SampleFromSnapshot(const OnlineTreeSnapshot& snapshot,
                                          uint64_t epoch,
                                          const HarvestHealth& health) {
  statstore::EpochSample sample;
  sample.epoch = epoch;
  const double overall = snapshot.overall_variance();
  sample.values.reserve(3 * snapshot.nodes.size() + 10);
  for (size_t id = 1; id < snapshot.nodes.size(); ++id) {
    const std::string path = snapshot.NodePath(static_cast<NodeId>(id));
    sample.values.push_back({NodeSeriesName(path, "mean_ns"),
                             snapshot.node_mean[id]});
    sample.values.push_back({NodeSeriesName(path, "variance_ns2"),
                             snapshot.node_variance[id]});
    sample.values.push_back(
        {NodeSeriesName(path, "share"),
         overall > 0.0 ? snapshot.node_variance[id] / overall : 0.0});
  }
  sample.values.push_back(
      {"stats:intervals", static_cast<double>(snapshot.intervals)});
  sample.values.push_back({"stats:weight", snapshot.weight});
  sample.values.push_back(
      {"stats:latency_mean_ns", snapshot.overall_mean()});
  sample.values.push_back({"stats:latency_variance_ns2", overall});
  sample.values.push_back({"health:dropped_records",
                           static_cast<double>(snapshot.dropped_records)});
  sample.values.push_back({"health:stuck_threads",
                           static_cast<double>(snapshot.stuck_threads)});
  sample.values.push_back(
      {"health:stuck_thread_epochs",
       static_cast<double>(snapshot.stuck_thread_epochs)});
  sample.values.push_back(
      {"health:rotation_gap_last_ns",
       static_cast<double>(health.rotation_gap_last_ns)});
  sample.values.push_back({"health:rotation_gap_max_ns",
                           static_cast<double>(health.rotation_gap_max_ns)});
  sample.values.push_back(
      {"health:rotation_gap_total_ns",
       static_cast<double>(health.rotation_gap_total_ns)});
  return sample;
}

int ObserveSnapshot(statstore::RegressionDetector* detector,
                    const OnlineTreeSnapshot& snapshot, uint64_t epoch) {
  const double overall = snapshot.overall_variance();
  int flags = 0;
  for (size_t id = 1; id < snapshot.nodes.size(); ++id) {
    const double share =
        overall > 0.0 ? snapshot.node_variance[id] / overall : 0.0;
    const std::string series = NodeSeriesName(
        snapshot.NodePath(static_cast<NodeId>(id)), "share");
    if (detector->Observe(series, epoch, share)) {
      ++flags;
    }
  }
  return flags;
}

}  // namespace vprof
