file(REMOVE_RECURSE
  "CMakeFiles/minipg_engine_test.dir/pg_engine_test.cc.o"
  "CMakeFiles/minipg_engine_test.dir/pg_engine_test.cc.o.d"
  "minipg_engine_test"
  "minipg_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipg_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
