file(REMOVE_RECURSE
  "CMakeFiles/vprof_sync_test.dir/sync_test.cc.o"
  "CMakeFiles/vprof_sync_test.dir/sync_test.cc.o.d"
  "vprof_sync_test"
  "vprof_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
