// InnoDB-style os_event wrapper. The wait is an instrumented function so the
// profiler can attribute lock-wait variance to `os_event_wait` exactly as the
// paper's MySQL case study does (Table 4).
#ifndef SRC_MINIDB_OS_EVENT_H_
#define SRC_MINIDB_OS_EVENT_H_

#include "src/vprof/probe.h"
#include "src/vprof/sync.h"

namespace minidb {

class OsEvent {
 public:
  void Wait() {
    VPROF_FUNC("os_event_wait");
    event_.Wait();
  }

  // Returns false on timeout.
  bool WaitFor(int64_t timeout_ns) {
    VPROF_FUNC("os_event_wait");
    return event_.WaitFor(timeout_ns);
  }

  void Set() { event_.Set(); }
  void Reset() { event_.Reset(); }
  bool IsSet() const { return event_.IsSet(); }

 private:
  vprof::Event event_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_OS_EVENT_H_
