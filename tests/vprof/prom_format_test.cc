// Prometheus text-exposition conformance for the service's metrics
// endpoints: sorted family order, HELP/TYPE for every family, label-value
// escaping, and byte-stable formatting. Validated structurally rather than
// by golden text so the checks survive metric additions.
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/vprof/service/online_tree.h"
#include "src/vprof/service/prom.h"
#include "src/vprof/service/vprofd.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return true;
}

// Splits "name{labels} value" / "name value"; empty name on malformed input.
void SplitSampleLine(const std::string& line, std::string* name,
                     std::string* labels, std::string* value) {
  name->clear();
  labels->clear();
  value->clear();
  size_t pos = line.find_first_of("{ ");
  if (pos == std::string::npos) return;
  *name = line.substr(0, pos);
  if (line[pos] == '{') {
    // The label block ends at the first unescaped '}' outside quotes.
    bool in_quotes = false;
    size_t end = std::string::npos;
    for (size_t i = pos + 1; i < line.size(); ++i) {
      if (in_quotes) {
        if (line[i] == '\\') {
          ++i;  // skip the escaped character
        } else if (line[i] == '"') {
          in_quotes = false;
        }
      } else if (line[i] == '"') {
        in_quotes = true;
      } else if (line[i] == '}') {
        end = i;
        break;
      }
    }
    if (end == std::string::npos || end + 1 >= line.size() ||
        line[end + 1] != ' ') {
      name->clear();
      return;
    }
    *labels = line.substr(pos, end - pos + 1);
    *value = line.substr(end + 2);
  } else {
    *value = line.substr(pos + 1);
  }
}

// Structural validation of one exposition document:
//   - every family appears once, in sorted order, as HELP then TYPE then
//     its samples (possibly none);
//   - sample names match the current family; values parse as doubles;
//   - label blocks are well-formed key="value" lists with escaped quotes.
void ValidatePromText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "document must end with a newline";

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }

  std::string prev_family;
  std::string current;  // family whose block we are inside
  bool type_seen = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    SCOPED_TRACE("line " + std::to_string(i + 1) + ": " + line);
    ASSERT_FALSE(line.empty());
    if (line.rfind("# HELP ", 0) == 0) {
      const size_t name_end = line.find(' ', 7);
      ASSERT_NE(name_end, std::string::npos);
      const std::string name = line.substr(7, name_end - 7);
      EXPECT_TRUE(IsValidMetricName(name));
      EXPECT_LT(prev_family, name) << "families out of order or duplicated";
      prev_family = name;
      current = name;
      type_seen = false;
      // TYPE must immediately follow HELP.
      ASSERT_LT(i + 1, lines.size());
      EXPECT_EQ(lines[i + 1].rfind("# TYPE " + name + " ", 0), 0u)
          << "HELP not followed by TYPE for " << name;
    } else if (line.rfind("# TYPE ", 0) == 0) {
      const size_t name_end = line.find(' ', 7);
      ASSERT_NE(name_end, std::string::npos);
      EXPECT_EQ(line.substr(7, name_end - 7), current);
      const std::string type = line.substr(name_end + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge") << type;
      type_seen = true;
    } else {
      std::string name, labels, value;
      SplitSampleLine(line, &name, &labels, &value);
      ASSERT_FALSE(name.empty()) << "malformed sample line";
      EXPECT_EQ(name, current) << "sample outside its family block";
      EXPECT_TRUE(type_seen) << "sample before TYPE";
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      EXPECT_TRUE(end != value.c_str() && *end == '\0')
          << "unparsable value: " << value;
      if (!labels.empty()) {
        // {k="v",k2="v2"}: quotes balanced, values escaped.
        EXPECT_EQ(labels.front(), '{');
        EXPECT_EQ(labels.back(), '}');
        bool in_quotes = false;
        for (size_t j = 1; j + 1 < labels.size(); ++j) {
          if (in_quotes) {
            if (labels[j] == '\\') {
              ++j;
              EXPECT_TRUE(labels[j] == '\\' || labels[j] == '"' ||
                          labels[j] == 'n')
                  << "bad escape \\" << labels[j];
            } else if (labels[j] == '"') {
              in_quotes = false;
            }
          } else if (labels[j] == '"') {
            in_quotes = true;
          }
        }
        EXPECT_FALSE(in_quotes) << "unbalanced quotes";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PromWriter
// ---------------------------------------------------------------------------

TEST(PromWriterTest, EmitsSortedFamiliesWithHelpAndType) {
  PromWriter w;
  // Declared deliberately out of order.
  w.Family("zzz_total", "counter", "Last family.");
  w.Family("aaa_gauge", "gauge", "First family.");
  w.Family("mmm_total", "counter", "Middle family.");
  w.Sample("zzz_total", uint64_t{7});
  w.Sample("aaa_gauge", 1.5);
  w.Sample("mmm_total", uint64_t{0});
  const std::string text = w.Text();
  ValidatePromText(text);
  EXPECT_LT(text.find("aaa_gauge"), text.find("mmm_total"));
  EXPECT_LT(text.find("mmm_total"), text.find("zzz_total"));
  EXPECT_NE(text.find("# HELP aaa_gauge First family.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aaa_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("\naaa_gauge 1.5\n"), std::string::npos);
}

TEST(PromWriterTest, LargeCountersDoNotRoundThroughDouble) {
  PromWriter w;
  w.Family("big_total", "counter", "A counter too large for a double.");
  const uint64_t big = (uint64_t{1} << 63) + 3;
  w.Sample("big_total", big);
  EXPECT_NE(w.Text().find("big_total " + std::to_string(big) + "\n"),
            std::string::npos);
}

TEST(PromWriterTest, EscapesLabelValues) {
  EXPECT_EQ(PromWriter::EscapeLabel("plain"), "plain");
  EXPECT_EQ(PromWriter::EscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PromWriter::EscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PromWriter::EscapeLabel("a\nb"), "a\\nb");

  PromWriter w;
  w.Family("f", "gauge", "Escaping.");
  w.Sample("f", PromWriter::Labels{{"path", "fn\"quote\\slash\nline"}}, 1.0);
  const std::string text = w.Text();
  ValidatePromText(text);
  EXPECT_NE(text.find("f{path=\"fn\\\"quote\\\\slash\\nline\"} 1\n"),
            std::string::npos);
}

TEST(PromWriterTest, SamplesWithinFamilySortByLabels) {
  PromWriter w;
  w.Family("f", "gauge", "Label ordering.");
  w.Sample("f", PromWriter::Labels{{"path", "zebra"}}, 1.0);
  w.Sample("f", PromWriter::Labels{{"path", "aardvark"}}, 2.0);
  const std::string text = w.Text();
  ValidatePromText(text);
  EXPECT_LT(text.find("aardvark"), text.find("zebra"));
}

TEST(PromWriterTest, FamilyWithoutSamplesStillDeclared) {
  PromWriter w;
  w.Family("empty_total", "counter", "No samples yet.");
  const std::string text = w.Text();
  ValidatePromText(text);
  EXPECT_NE(text.find("# TYPE empty_total counter\n"), std::string::npos);
}

TEST(PromWriterTest, AppGaugeSeriesNamesAreScrapeClean) {
  // The scale-out gauges (per-shard lock waits, group-commit batch sizes)
  // carry dotted shard/unit paths. Dots are illegal in metric names, so the
  // path travels as a `series` label value and the family name stays fixed —
  // the exposition must remain conformant.
  PromWriter w;
  w.Family("vprofd_app_gauge", "gauge", "Application-published gauges.");
  w.Sample(
      "vprofd_app_gauge",
      PromWriter::Labels{{"series", "minidb.buf_pool.shard0.mutex_waits"}},
      17.0);
  w.Sample(
      "vprofd_app_gauge",
      PromWriter::Labels{{"series", "minipg.wal.unit1.batch_records_avg"}},
      3.25);
  const std::string text = w.Text();
  ValidatePromText(text);
  EXPECT_NE(
      text.find("vprofd_app_gauge{series=\"minidb.buf_pool.shard0.mutex_waits\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("vprofd_app_gauge{series=\"minipg.wal.unit1.batch_records_avg\"}"),
      std::string::npos);
}

TEST(PromWriterTest, EngineRobustnessCountersExposeAsAppGauges) {
  // Both engines publish their robustness counters (lock timeouts, deadlock
  // aborts, WAL/redo I/O errors, wedges, crashes, commit/abort totals) as
  // dotted app-gauge series; the exposition must stay conformant with the
  // full set plugged in as vprofd would.
  minidb::Engine db{minidb::EngineConfig{}};
  minipg::PgEngine pg{minipg::PgConfig{}};
  PromWriter w;
  w.Family("vprofd_app_gauge", "gauge", "Application-published gauges.");
  for (const AppGauge& gauge : db.RobustnessGauges()) {
    w.Sample("vprofd_app_gauge", PromWriter::Labels{{"series", gauge.name}},
             gauge.value);
  }
  for (const AppGauge& gauge : pg.RobustnessGauges()) {
    w.Sample("vprofd_app_gauge", PromWriter::Labels{{"series", gauge.name}},
             gauge.value);
  }
  const std::string text = w.Text();
  ValidatePromText(text);
  for (const char* series :
       {"minidb.lock.timeouts", "minidb.lock.deadlocks",
        "minidb.redo.io_errors", "minidb.redo.wedges", "minidb.redo.crashes",
        "minidb.txn.committed", "minidb.txn.aborted", "minipg.wal.io_errors",
        "minipg.wal.wedges", "minipg.wal.crashes", "minipg.txn.committed",
        "minipg.txn.aborted"}) {
    EXPECT_NE(text.find("vprofd_app_gauge{series=\"" + std::string(series) +
                        "\"}"),
              std::string::npos)
        << series;
  }
}

TEST(VprofdPromTest, SupervisorFamiliesAreConformant) {
  VprofdOptions options;
  options.root_function = "prom_fmt_supervisor_root";
  options.enable_controller = false;
  options.enable_supervisor = true;
  Vprofd daemon(std::move(options));
  const std::string text = daemon.MetricsText();
  ValidatePromText(text);
  EXPECT_NE(text.find("# TYPE vprofd_supervisor_state gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("vprofd_supervisor_state 0\n"), std::string::npos);
  EXPECT_NE(
      text.find("# TYPE vprofd_supervisor_escalations_total counter\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("# TYPE vprofd_supervisor_restorations_total counter\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("# TYPE vprofd_supervisor_unhealthy_epochs_total counter\n"),
      std::string::npos);
}

// ---------------------------------------------------------------------------
// OnlineTreeSnapshot::ToPromText
// ---------------------------------------------------------------------------

Trace BuildEvilTrace() {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 1000);
  const int root = tb.Invoke(0, "prom_fmt_root", 0, 1000, -1, 1);
  // Function names carry arbitrary bytes; the exposition must escape them.
  tb.Invoke(0, "evil\"quote\\slash\nnewline", 0, 400, root, 1);
  tb.Invoke(0, "prom_fmt_leaf", 400, 900, root, 1);
  return tb.Build();
}

TEST(OnlineTreePromTest, ExpositionIsConformant) {
  OnlineVarianceTree tree;
  tree.Fold(BuildEvilTrace());
  const std::string text = tree.Snapshot().ToPromText();
  ValidatePromText(text);

  // Tracer self-health families are first-class metrics.
  EXPECT_NE(text.find("# TYPE vprof_dropped_records_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vprof_stuck_threads_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE vprof_stuck_thread_epochs_total counter\n"),
            std::string::npos);
  // Per-node gauges keyed by escaped path.
  EXPECT_NE(text.find("evil\\\"quote\\\\slash\\nnewline"), std::string::npos);
  // The raw (unescaped) name must never appear.
  EXPECT_EQ(text.find("evil\"quote"), std::string::npos);
}

TEST(OnlineTreePromTest, EmptyTreeStillExposesStats) {
  OnlineVarianceTree tree;
  const std::string text = tree.Snapshot().ToPromText();
  ValidatePromText(text);
  EXPECT_NE(text.find("vprof_epochs_total 0\n"), std::string::npos);
}

}  // namespace
}  // namespace vprof
