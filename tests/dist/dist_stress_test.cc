// Stress: concurrent RPC traffic, tracing epoch flips, trace splitting and
// stitching, and DistMonitor updates all running at once. Primarily a TSan
// target (scripts/check.sh --tsan / --dist); the assertions are sanity
// floors, the sanitizer is the real oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/dist/monitor.h"
#include "src/dist/stitcher.h"
#include "src/dist/tier.h"
#include "src/net/async_client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/vprof/runtime.h"

namespace dist {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr int kCallers = 2;
constexpr int kEpochs = 4;
constexpr int kEpochMs = 60;
#else
constexpr int kCallers = 3;
constexpr int kEpochs = 6;
constexpr int kEpochMs = 50;
#endif

// kTxn dispatches to a worker (kPing would be answered inline on the loop
// thread, bypassing the span machinery under test).
net::Frame Txn() {
  net::Frame f;
  f.type = net::MsgType::kTxn;
  f.txn.type = minidb::TxnType::kPayment;
  f.txn.warehouse = 1;
  return f;
}

TEST(DistStressTest, StitchingRacesEpochFlips) {
  SpanLog log;
  net::NetServerOptions sopt;
  sopt.workers = 2;
  sopt.span_sink = log.ServerSink();
  net::NetServer server(sopt, [](const net::Frame&) {
    net::Frame reply;
    reply.type = net::MsgType::kTxnReply;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  net::AsyncClientOptions copt;
  copt.port = server.port();
  copt.connections = 2;
  copt.service = net::ServiceId::kMinidb;
  copt.span_sink = log.ClientSink();
  net::AsyncClient client(copt);
  ASSERT_TRUE(client.Connect());

  vprof::StartTracing();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&client, &stop, &completed]() {
      while (!stop.load(std::memory_order_relaxed)) {
        const vprof::IntervalId sid = vprof::BeginInterval();
        net::Frame reply;
        if (client.Call(Txn(), &reply)) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
        vprof::EndInterval(sid);
      }
    });
  }

  // Monitor thread: concurrent tier updates and merged snapshots.
  DistMonitor monitor;
  {
    TierConfig front;
    front.name = "front";
    front.is_front = true;
    monitor.RegisterTier(front);
    TierConfig backend;
    backend.name = "minidb";
    monitor.RegisterTier(backend);
  }
  std::thread monitor_thread([&monitor, &stop]() {
    int64_t epoch = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      monitor.UpdateTier("front", vprof::OnlineTreeSnapshot());
      monitor.UpdateTier("minidb", vprof::OnlineTreeSnapshot());
      const DistSnapshot snap = monitor.Snapshot();
      EXPECT_EQ(snap.tiers.size(), 2u);
      (void)monitor.Sample(epoch++);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Epoch thread: flip tracing, split the harvested trace into tiers, and
  // stitch — all while the callers and the monitor keep running.
  uint64_t stitched_threads = 0;
  for (int e = 0; e < kEpochs; ++e) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kEpochMs));
    vprof::Trace trace = vprof::StopTracing();
    vprof::StartTracing();

    const std::vector<vprof::ThreadId> backend_roster = server.ProfiledTids();
    const std::vector<vprof::Trace> tiers =
        SplitByTids(trace, {{}, backend_roster}, /*default_index=*/0);
    ASSERT_EQ(tiers.size(), 2u);

    TierTrace front;
    front.name = "front";
    front.service = net::ServiceId::kFront;
    front.trace = tiers[0];
    front.client_spans = log.ClientSpans();

    TierTrace backend;
    backend.name = "minidb";
    backend.service = net::ServiceId::kMinidb;
    backend.trace = tiers[1];
    backend.server_spans = log.ServerSpans();
    log.Clear();

    std::vector<TierTrace> backends;
    backends.push_back(backend);
    const StitchResult result = StitchTraces(front, backends);
    stitched_threads += result.trace.threads.size();
    EXPECT_LE(result.stats.matched_spans, front.client_spans.size());
    EXPECT_GE(result.trace.threads.size(),
              front.trace.threads.size() + backend.trace.threads.size() -
                  result.stats.remapped_threads);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : callers) {
    t.join();
  }
  monitor_thread.join();
  (void)vprof::StopTracing();

  client.Shutdown();
  server.Shutdown();

  EXPECT_GT(completed.load(), 0u);
  EXPECT_GT(stitched_threads, 0u);
}

}  // namespace
}  // namespace dist
