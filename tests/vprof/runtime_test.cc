#include "src/vprof/runtime.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/vprof/probe.h"
#include "src/vprof/registry.h"

namespace vprof {
namespace {

void InstrumentedLeaf() {
  VPROF_FUNC("rt_leaf");
}

void InstrumentedParent() {
  VPROF_FUNC("rt_parent");
  InstrumentedLeaf();
  InstrumentedLeaf();
}

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { DisableAllFunctions(); }
  void TearDown() override {
    if (IsTracing()) {
      StopTracing();
    }
    DisableAllFunctions();
  }
};

TEST_F(RuntimeTest, NoRecordsWhenNotTracing) {
  InstrumentedParent();
  StartTracing();
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.invocation_count(), 0u);
}

TEST_F(RuntimeTest, DisabledFunctionsNotRecorded) {
  SetFunctionEnabled(RegisterFunction("rt_parent"), true);
  StartTracing();
  InstrumentedParent();
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.invocation_count(), 1u);  // leaf disabled
}

TEST_F(RuntimeTest, ParentChildLinkage) {
  SetFunctionEnabled(RegisterFunction("rt_parent"), true);
  SetFunctionEnabled(RegisterFunction("rt_leaf"), true);
  StartTracing();
  InstrumentedParent();
  const Trace trace = StopTracing();
  ASSERT_EQ(trace.invocation_count(), 3u);
  const ThreadTrace* mine = nullptr;
  for (const ThreadTrace& t : trace.threads) {
    if (!t.invocations.empty()) {
      mine = &t;
    }
  }
  ASSERT_NE(mine, nullptr);
  const FuncId parent_id = RegisterFunction("rt_parent");
  const FuncId leaf_id = RegisterFunction("rt_leaf");
  int leafs_under_parent = 0;
  for (const Invocation& inv : mine->invocations) {
    if (inv.func == leaf_id) {
      ASSERT_GE(inv.parent, 0);
      EXPECT_EQ(mine->invocations[static_cast<size_t>(inv.parent)].func, parent_id);
      ++leafs_under_parent;
    } else {
      EXPECT_EQ(inv.func, parent_id);
      EXPECT_EQ(inv.parent, -1);
    }
    EXPECT_GE(inv.end, inv.start);
  }
  EXPECT_EQ(leafs_under_parent, 2);
}

TEST_F(RuntimeTest, IntervalBeginEndRecorded) {
  StartTracing();
  const IntervalId sid = BeginInterval();
  EXPECT_NE(sid, kNoInterval);
  EXPECT_EQ(CurrentIntervalId(), sid);
  EndInterval(sid);
  EXPECT_EQ(CurrentIntervalId(), kNoInterval);
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.interval_count(), 1u);
}

TEST_F(RuntimeTest, IntervalIdsAreUnique) {
  StartTracing();
  const IntervalId a = BeginInterval();
  EndInterval(a);
  const IntervalId b = BeginInterval();
  EndInterval(b);
  EXPECT_NE(a, b);
  StopTracing();
}

TEST_F(RuntimeTest, InvocationsLabeledWithCurrentInterval) {
  SetFunctionEnabled(RegisterFunction("rt_parent"), true);
  StartTracing();
  const IntervalId sid = BeginInterval();
  InstrumentedParent();
  EndInterval(sid);
  const Trace trace = StopTracing();
  bool found = false;
  for (const ThreadTrace& t : trace.threads) {
    for (const Invocation& inv : t.invocations) {
      EXPECT_EQ(inv.sid, sid);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RuntimeTest, SegmentsSplitOnIntervalSwitch) {
  StartTracing();
  const IntervalId sid = BeginInterval();
  InstrumentedParent();  // forces a segment to exist
  EndInterval(sid);
  const Trace trace = StopTracing();
  int labeled = 0;
  for (const ThreadTrace& t : trace.threads) {
    for (const Segment& seg : t.segments) {
      EXPECT_LE(seg.start, seg.end);
      if (seg.sid == sid) {
        ++labeled;
      }
    }
  }
  EXPECT_GE(labeled, 1);
}

TEST_F(RuntimeTest, WorkOnBehalfRelabelsThread) {
  StartTracing();
  WorkOnBehalf(42);
  EXPECT_EQ(CurrentIntervalId(), 42u);
  WorkOnBehalf(kNoInterval);
  EXPECT_EQ(CurrentIntervalId(), kNoInterval);
  StopTracing();
}

TEST_F(RuntimeTest, StopClampsOpenInvocations) {
  SetFunctionEnabled(RegisterFunction("rt_open"), true);
  StartTracing();
  {
    VPROF_FUNC("rt_open");
    const Trace trace = StopTracing();
    bool found = false;
    for (const ThreadTrace& t : trace.threads) {
      for (const Invocation& inv : t.invocations) {
        EXPECT_GE(inv.end, inv.start);
        found = true;
      }
    }
    EXPECT_TRUE(found);
    // Probe destructor runs after StopTracing: epoch guard must ignore it.
    StartTracing();
  }
  StopTracing();
}

TEST_F(RuntimeTest, TraceTimesAreRunRelative) {
  StartTracing();
  SetFunctionEnabled(RegisterFunction("rt_parent"), true);
  InstrumentedParent();
  const Trace trace = StopTracing();
  for (const ThreadTrace& t : trace.threads) {
    for (const Invocation& inv : t.invocations) {
      EXPECT_GE(inv.start, 0);
      EXPECT_LE(inv.end, trace.duration);
    }
  }
}

TEST_F(RuntimeTest, IntervalScopeBeginsAndEnds) {
  StartTracing();
  {
    IntervalScope scope(/*label=*/3);
    EXPECT_NE(scope.id(), kNoInterval);
    EXPECT_EQ(CurrentIntervalId(), scope.id());
  }
  EXPECT_EQ(CurrentIntervalId(), kNoInterval);
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.interval_count(), 1u);
  bool found_label = false;
  for (const ThreadTrace& t : trace.threads) {
    for (const IntervalEvent& e : t.interval_events) {
      if (e.kind == IntervalEventKind::kBegin) {
        EXPECT_EQ(e.label, 3u);
        found_label = true;
      }
    }
  }
  EXPECT_TRUE(found_label);
}

TEST_F(RuntimeTest, IntervalScopeJoinsEnclosingInterval) {
  StartTracing();
  const IntervalId outer = BeginInterval();
  {
    IntervalScope inner;
    EXPECT_EQ(inner.id(), kNoInterval);  // joined, not created
    EXPECT_EQ(CurrentIntervalId(), outer);
  }
  EXPECT_EQ(CurrentIntervalId(), outer);  // not ended by the inner scope
  EndInterval(outer);
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.interval_count(), 1u);
}

void DeepNest(int remaining) {
  VPROF_FUNC("rt_deep");
  if (remaining > 0) {
    DeepNest(remaining - 1);
  }
}

TEST_F(RuntimeTest, NestingBeyondMaxProbeDepthIsSafe) {
  // Regression: the parent lookup used to read stack_[depth_ - 1] past the
  // frame array once depth_ exceeded kMaxProbeDepth.
  SetFunctionEnabled(RegisterFunction("rt_deep"), true);
  StartTracing();
  const int kCalls = kMaxProbeDepth + 32;
  DeepNest(kCalls - 1);
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.invocation_count(), static_cast<uint64_t>(kCalls));
  for (const ThreadTrace& t : trace.threads) {
    for (size_t i = 0; i < t.invocations.size(); ++i) {
      const Invocation& inv = t.invocations[i];
      EXPECT_GE(inv.end, inv.start);
      // Parents must reference an earlier, in-bounds record; frames deeper
      // than the stack clamp to the deepest tracked ancestor.
      EXPECT_GE(inv.parent, -1);
      EXPECT_LT(inv.parent, static_cast<int32_t>(i));
    }
  }
}

void CappedLeaf() {
  VPROF_FUNC("rt_capped");
}

TEST_F(RuntimeTest, ArenaCapDropsAndCountsOverflow) {
  SetFunctionEnabled(RegisterFunction("rt_capped"), true);
  SetArenaRecordCap(16);
  StartTracing();
  for (int i = 0; i < 200; ++i) {
    CappedLeaf();
  }
  const Trace trace = StopTracing();
  EXPECT_EQ(trace.invocation_count(), 16u);
  EXPECT_GE(trace.dropped_record_count(), 184u);
  // Dropped records must never be linked to: every stored parent index is
  // in bounds.
  for (const ThreadTrace& t : trace.threads) {
    for (const Invocation& inv : t.invocations) {
      EXPECT_GE(inv.parent, -1);
      EXPECT_LT(inv.parent, static_cast<int32_t>(t.invocations.size()));
    }
  }
  // Lifting the cap restores unbounded recording on the next run.
  SetArenaRecordCap(0);
  StartTracing();
  for (int i = 0; i < 20; ++i) {
    CappedLeaf();
  }
  const Trace uncapped = StopTracing();
  EXPECT_EQ(uncapped.invocation_count(), 20u);
  EXPECT_EQ(uncapped.dropped_record_count(), 0u);
}

TEST_F(RuntimeTest, StopTracingBoundedWhenProbeWedges) {
  fault::DeactivateAll();
  fault::ResetCounters();
  SetFunctionEnabled(RegisterFunction("rt_wedge"), true);
  SetQuiesceTimeoutNs(50'000'000);  // 50 ms bound for the test
  StartTracing();
  fault::Activate("vprof/probe_wedge", fault::Trigger::OneShot());
  std::thread victim([] {
    VPROF_FUNC("rt_wedge");  // wedges inside the probe's op window
  });
  while (fault::TriggerCount("vprof/probe_wedge") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const Trace trace = StopTracing();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Without the bound this would hang forever on the wedged thread.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ASSERT_EQ(trace.stuck_threads.size(), 1u);
  fault::Deactivate("vprof/probe_wedge");  // releases the victim
  victim.join();
  // Recovery: the next run finds the thread quiescent, clears the
  // quarantine, and records it normally again.
  SetFunctionEnabled(RegisterFunction("rt_wedge"), true);
  StartTracing();
  std::thread healthy([] {
    VPROF_FUNC("rt_wedge");
  });
  healthy.join();
  const Trace recovered = StopTracing();
  EXPECT_TRUE(recovered.stuck_threads.empty());
  EXPECT_GE(recovered.invocation_count(), 1u);
  SetQuiesceTimeoutNs(0);  // restore the default bound
  fault::DeactivateAll();
  fault::ResetCounters();
}

TEST_F(RuntimeTest, FullTraceModeRecordsEverything) {
  // No functions enabled, but full-trace mode captures all probes.
  EnableFullTrace(true);
  StartTracing();
  InstrumentedParent();
  InstrumentedParent();
  StopTracing();
  EnableFullTrace(false);
  const FullTraceStats stats = GetFullTracerStats();
  EXPECT_EQ(stats.events, 12u);  // 2 calls x 3 functions x entry+exit
  EXPECT_EQ(stats.distinct_functions, 2u);
}

}  // namespace
}  // namespace vprof
