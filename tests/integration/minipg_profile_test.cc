// End-to-end: VProfiler on minipg must reproduce the paper's Table 6
// finding — the single WAL write lock (LWLockAcquireOrWait) dominates
// transaction latency variance.
#include <gtest/gtest.h>

#include "src/minipg/engine.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/tpcc.h"

namespace {

vprof::ProfileResult ProfileMinipg(int wal_units) {
  minipg::PgConfig config;
  config.wal_units = wal_units;
  minipg::PgEngine engine(config);
  vprof::CallGraph graph;
  minipg::PgEngine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 250;
  workload::TpccDriver driver(nullptr, options);
  const auto run = [&] {
    driver.RunWith(
        [&engine](const minidb::TxnRequest& request) {
          return engine.Execute(request);
        },
        8);
  };
  run();  // warm-up
  vprof::Profiler profiler("exec_simple_query", &graph, run);
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  return profiler.Run(profile_options);
}

TEST(MinipgProfileIntegration, WalWriteLockDominates) {
  const auto result = ProfileMinipg(1);
  ASSERT_FALSE(result.all_factors.empty());
  // LWLockAcquireOrWait must be the #1 ranked factor with a dominant share
  // (paper: 76.8%).
  EXPECT_EQ(result.all_factors[0].Label(result.function_names),
            "LWLockAcquireOrWait");
  EXPECT_GT(result.all_factors[0].contribution, 0.4);
}

TEST(MinipgProfileIntegration, RefinementReachesTheLockInFewRuns) {
  const auto result = ProfileMinipg(1);
  EXPECT_GE(result.runs, 2);
  EXPECT_LE(result.runs, 8);
  bool instrumented = false;
  for (const auto& name : result.instrumented) {
    instrumented |= (name == "LWLockAcquireOrWait");
  }
  EXPECT_TRUE(instrumented);
}

}  // namespace
