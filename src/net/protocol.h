// Wire protocol of the network front-end: length-prefixed binary frames.
//
// The paper's semantic intervals begin when a request becomes readable on a
// socket; this protocol is the minimal framing that lets the three servers
// (minidb, minipg, httpd) sit behind a real wire boundary. Every frame is
//
//   u32  length      — bytes following this field (type + request id +
//                      extensions + payload); bounded by kMaxFrameBytes
//   u8   type        — MsgType, high bit (kExtensionFlag) set when header
//                      extensions follow the request id
//   u64  request_id  — echoed verbatim in the reply, so clients may pipeline
//                      many requests per connection and match replies out of
//                      order (the server's worker pool does not preserve
//                      per-connection ordering)
//   ...  extensions  — optional, only when the flag bit is set:
//                      u8 count, then per extension u8 ext_type | u8 len |
//                      bytes. Unknown extension types are skipped, so old
//                      peers survive new metadata; malformed blocks are a
//                      typed kBadExtension.
//   ...  payload     — per-type body, exact size enforced
//
// The trace-context extension carries the distributed-profiling identity of a
// request ({interval_id, span_id, origin_service, send time}) into a backend
// tier; the server-timing extension carries the backend's span bookkeeping
// back. Together they let dist::TraceStitcher join per-process traces into
// one semantic interval spanning the wire.
//
// All integers are little-endian. Decoding is strict: short or long
// payloads, out-of-range enum values and oversized lengths are typed errors
// (WireError), never partial frames. DecodeFrame never consumes bytes on an
// error; FrameParser additionally recovers from *frame-local* violations
// (unknown type, malformed extension block) whose declared length is
// trustworthy, by skipping exactly that frame and surfacing it with
// Frame::decode_error set — the connection survives version skew instead of
// being sticky-poisoned.
#ifndef SRC_NET_PROTOCOL_H_
#define SRC_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/minidb/engine.h"  // TxnRequest/TxnType/TxnError shapes

namespace net {

// Frame geometry.
inline constexpr size_t kLengthBytes = 4;
inline constexpr size_t kFrameOverhead = 1 + 8;  // type + request_id
inline constexpr size_t kHeaderBytes = kLengthBytes + kFrameOverhead;
inline constexpr uint32_t kMaxPayloadBytes = 16 * 1024;
inline constexpr uint32_t kMaxFrameBytes =
    static_cast<uint32_t>(kFrameOverhead) + kMaxPayloadBytes;
// NewOrder carries at most a handful of items; anything larger is garbage.
inline constexpr size_t kMaxTxnItems = 64;

// High bit of the wire type byte: header extensions present.
inline constexpr uint8_t kExtensionFlag = 0x80;
// An extension block carries at most this many entries; a count beyond it is
// malformed, not future-proofing (each entry is >= 2 bytes, and no sane
// header needs more).
inline constexpr uint8_t kMaxExtensions = 8;

enum class MsgType : uint8_t {
  // Requests (client -> server).
  kTxn = 1,        // a TPC-C-shaped transaction for minidb/minipg
  kHttpGet = 2,    // a static-file fetch for httpd
  kPing = 3,       // liveness / drain probe
  kClockSync = 4,  // fastclock calibration probe (NTP-style exchange)

  // Replies (server -> client).
  kTxnReply = 16,   // status 0 = committed, 1 = aborted; error = TxnError
  kHttpReply = 17,  // status 0 = 200 OK, 1 = failed; value = bytes served
  kPong = 18,
  kRejected = 19,        // 503: shed at the accept path or the dispatch queue
  kError = 20,           // protocol violation; error = WireError
  kClockSyncReply = 21,  // echoes t1, carries the server receive stamp t2
};

// Header extension types.
enum class ExtType : uint8_t {
  kTraceContext = 1,  // request: origin identity of a distributed interval
  kServerTiming = 2,  // reply: backend span bookkeeping for the stitcher
};

// Which service originated (or answered) a distributed request. Wire-level:
// one byte inside the trace-context extension.
enum class ServiceId : uint8_t {
  kUnknown = 0,
  kFront = 1,   // httpd front tier
  kMinidb = 2,  // minidb backend tier
  kMinipg = 3,  // minipg backend tier
};
const char* ServiceName(ServiceId service);

// Trace-context extension payload (25 bytes): the identity a front tier
// stamps on an outgoing RPC so the backend can anchor its work to the
// originating semantic interval.
struct TraceContext {
  uint64_t interval_id = 0;    // originating vprof interval (front-tier sid)
  uint64_t span_id = 0;        // unique per RPC within the origin process
  ServiceId origin_service = ServiceId::kUnknown;
  int64_t send_time_ns = 0;    // origin fastclock immediately before send
};

// Server-timing extension payload (28 bytes): the backend's side of a span,
// echoed on the reply so the client-side span log has both halves.
struct ServerTiming {
  uint64_t span_id = 0;
  int64_t recv_time_ns = 0;   // backend fastclock when the frame dispatched
  int64_t reply_time_ns = 0;  // backend fastclock when the reply was built
  int32_t worker_tid = -1;    // backend vprof tid that executed the request
};

// Typed decode failure. kNeedMore is not a failure: the frame is simply not
// complete yet.
enum class WireError : uint8_t {
  kOk = 0,
  kNeedMore = 1,
  kOversized = 2,      // declared length exceeds kMaxFrameBytes (or < overhead)
  kBadType = 3,        // unknown MsgType, or a reply type sent to a server
  kBadPayload = 4,     // payload size/enum/count does not match the type
  kBadExtension = 5,   // extension block overruns the frame or is malformed
};
const char* WireErrorName(WireError error);

// One parsed frame. A plain value type: the union-of-fields layout keeps
// encode/decode trivially exhaustive over MsgType.
struct Frame {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;

  minidb::TxnRequest txn;  // kTxn
  uint64_t file_id = 0;    // kHttpGet

  uint8_t status = 0;     // kTxnReply / kHttpReply
  uint8_t error = 0;      // kTxnReply: minidb::TxnError; kError: WireError
  uint64_t value = 0;     // kTxnReply: trx id; kHttpReply: bytes served

  int64_t t1_ns = 0;  // kClockSync / kClockSyncReply: client send stamp
  int64_t t2_ns = 0;  // kClockSyncReply: server receive stamp

  // Header extensions (any request or reply type may carry them).
  bool has_trace_context = false;
  TraceContext trace_context;
  bool has_server_timing = false;
  ServerTiming server_timing;

  // Set only on frames synthesized by FrameParser for a recoverable
  // violation (kBadType / kBadExtension): the frame was skipped whole, no
  // typed fields above are meaningful, raw_type holds the offending wire
  // type byte and request_id was salvaged so the server can address a typed
  // kError reply. kOk on every genuinely decoded frame.
  WireError decode_error = WireError::kOk;
  uint8_t raw_type = 0;
};

// Serializes `frame` onto `out` (appends; does not clear). Extensions are
// emitted iff the corresponding has_* flag is set.
void EncodeFrame(const Frame& frame, std::string* out);

// Decodes one frame from [data, data+size). Returns kOk and sets *consumed
// on success; kNeedMore when the buffer holds only a frame prefix (consumed
// is 0); any other value is a protocol violation (consumed is 0 — the caller
// decides whether the declared length is trustworthy enough to skip).
WireError DecodeFrame(const uint8_t* data, size_t size, Frame* out,
                      size_t* consumed);

// Incremental per-connection parser: feed whatever the socket produced,
// collect every completed frame. The internal buffer is bounded by the
// declared frame length (itself bounded by kMaxFrameBytes), so a peer cannot
// grow server memory by dribbling an unterminated frame.
//
// Error handling is two-tier. Violations that leave the declared length
// trustworthy (kBadType, kBadExtension — the frame was fully buffered and
// only its interior is unintelligible) are *recoverable*: the parser skips
// exactly that frame, appends a Frame with decode_error set (request id
// salvaged) so the server can send a typed kError reply, and keeps parsing —
// old peers survive new frame types and header extensions. Violations that
// poison the framing itself (kOversized: the length field is garbage;
// kBadPayload: a known type whose body contradicts its declared size —
// byte-level corruption, not version skew) are sticky: every further Feed
// reports the same error and nothing after the violation may dispatch.
class FrameParser {
 public:
  // Appends completed frames to *out. Returns kOk while the stream is
  // healthy (possibly mid-frame); otherwise the first sticky violation hit.
  WireError Feed(const uint8_t* data, size_t size, std::vector<Frame>* out);

  size_t buffered_bytes() const { return buffer_.size(); }
  WireError error() const { return error_; }
  // Frames skipped-and-reported rather than dispatched (version skew).
  uint64_t recovered_frames() const { return recovered_frames_; }

 private:
  std::vector<uint8_t> buffer_;
  WireError error_ = WireError::kOk;
  uint64_t recovered_frames_ = 0;
};

}  // namespace net

#endif  // SRC_NET_PROTOCOL_H_
