// End-to-end: VProfiler on minidb must reproduce the paper's Table 4
// findings — lock waits dominate the memory-resident regime, buffer-pool
// mutex contention dominates the memory-constrained regime.
#include <gtest/gtest.h>

#include "src/minidb/engine.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/tpcc.h"

namespace {

vprof::ProfileResult ProfileMinidb(const minidb::EngineConfig& config,
                                   int threads, int txns) {
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  workload::TpccOptions options;
  options.threads = threads;
  options.transactions_per_thread = txns;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up
  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  return profiler.Run(profile_options);
}

double ContributionOf(const vprof::ProfileResult& result,
                      const std::string& label) {
  for (const auto& factor : result.all_factors) {
    if (factor.Label(result.function_names) == label) {
      return factor.contribution;
    }
  }
  return 0.0;
}

int RankOf(const vprof::ProfileResult& result, const std::string& label) {
  int rank = 1;
  for (const auto& factor : result.all_factors) {
    if (factor.Label(result.function_names) == label) {
      return rank;
    }
    ++rank;
  }
  return 1000;
}

TEST(MinidbProfileIntegration, LockWaitsDominateMemoryResidentRegime) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  const auto result = ProfileMinidb(config, 8, 200);

  // os_event_wait must be found, ranked within the top factors, and carry a
  // large share of the overall variance (paper: 59.2%).
  EXPECT_LE(RankOf(result, "os_event_wait"), 4);
  EXPECT_GT(ContributionOf(result, "os_event_wait"), 0.25);
  // Refinement must have reached it (it is three levels below the root).
  bool instrumented = false;
  for (const auto& name : result.instrumented) {
    instrumented |= (name == "os_event_wait");
  }
  EXPECT_TRUE(instrumented);
  EXPECT_GE(result.runs, 3);
}

TEST(MinidbProfileIntegration, BufferMutexDominatesMemoryConstrainedRegime) {
  const auto result =
      ProfileMinidb(minidb::EngineConfig::MemoryConstrained(), 4, 150);
  EXPECT_LE(RankOf(result, "buf_pool_mutex_enter"), 5);
  EXPECT_GT(ContributionOf(result, "buf_pool_mutex_enter"), 0.15);
  // Lock waits must NOT dominate this regime (paper's Table 4, 2-WH rows).
  EXPECT_LT(ContributionOf(result, "os_event_wait"),
            ContributionOf(result, "buf_pool_mutex_enter") + 0.4);
}

TEST(MinidbProfileIntegration, CallSiteSplitMatchesPaperShape) {
  // The two biggest os_event_wait call sites are under row_upd and row_sel
  // (the paper's [A] and [B]).
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  const auto result = ProfileMinidb(config, 8, 200);
  const auto& analysis = *result.analysis;
  double upd_contribution = 0.0;
  double sel_contribution = 0.0;
  for (size_t i = 1; i < analysis.node_count(); ++i) {
    const auto id = static_cast<vprof::NodeId>(i);
    if (analysis.NodeLabel(id) != "os_event_wait") {
      continue;
    }
    // Walk up to the row-operation ancestor.
    vprof::NodeId ancestor = analysis.node(id).parent;
    while (ancestor > 0 &&
           analysis.NodeLabel(ancestor) != "row_upd" &&
           analysis.NodeLabel(ancestor) != "row_sel") {
      ancestor = analysis.node(ancestor).parent;
    }
    if (ancestor > 0 && analysis.NodeLabel(ancestor) == "row_upd") {
      upd_contribution += analysis.NodeContribution(id);
    } else if (ancestor > 0 && analysis.NodeLabel(ancestor) == "row_sel") {
      sel_contribution += analysis.NodeContribution(id);
    }
  }
  // Paper: [A] (updates) 37.5% > [B] (selects) 21.7% > 0.
  EXPECT_GT(upd_contribution, sel_contribution);
  EXPECT_GT(sel_contribution, 0.0);
}

}  // namespace
