# Empty dependencies file for ablation_specificity.
# This may be replaced when dependencies are built.
