
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/httpd/bucket_alloc.cc" "src/httpd/CMakeFiles/httpd.dir/bucket_alloc.cc.o" "gcc" "src/httpd/CMakeFiles/httpd.dir/bucket_alloc.cc.o.d"
  "/root/repo/src/httpd/filters.cc" "src/httpd/CMakeFiles/httpd.dir/filters.cc.o" "gcc" "src/httpd/CMakeFiles/httpd.dir/filters.cc.o.d"
  "/root/repo/src/httpd/server.cc" "src/httpd/CMakeFiles/httpd.dir/server.cc.o" "gcc" "src/httpd/CMakeFiles/httpd.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vprof/CMakeFiles/vprof.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/simio.dir/DependInfo.cmake"
  "/root/repo/build/src/statkit/CMakeFiles/statkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
