#include "src/statkit/rng.h"

#include <set>

#include <gtest/gtest.h>

namespace statkit {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextBelow(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.NextInRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(RngTest, MeanOfUniformIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace statkit
