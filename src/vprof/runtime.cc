#include "src/vprof/runtime.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "src/vprof/full_tracer.h"

namespace vprof {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_full_trace{false};

namespace {

using Clock = std::chrono::steady_clock;

struct RuntimeState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> threads;
  std::atomic<uint64_t> next_interval{1};
  std::atomic<uint64_t> run_epoch{0};
  Clock::time_point epoch = Clock::now();
};

RuntimeState& State() {
  static RuntimeState* state = new RuntimeState();
  return *state;
}

thread_local ThreadState* tls_thread = nullptr;

}  // namespace

TimeNs Now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              State().epoch)
      .count();
}

ThreadState* CurrentThread() {
  if (tls_thread == nullptr) {
    RuntimeState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    auto owned =
        std::make_unique<ThreadState>(static_cast<ThreadId>(state.threads.size()));
    owned->ResetForRun(state.run_epoch.load(std::memory_order_relaxed));
    tls_thread = owned.get();
    state.threads.push_back(std::move(owned));
  }
  return tls_thread;
}

// --- ThreadState ------------------------------------------------------------

void ThreadState::ResetForRun(uint64_t run_epoch) {
  run_epoch_ = run_epoch;
  current_sid_ = kNoInterval;
  invocations_.clear();
  segments_.clear();
  interval_events_.clear();
  depth_ = 0;
  block_depth_ = 0;
  seg_start_ = -1;
  seg_sid_ = kNoInterval;
  seg_state_ = SegmentState::kExecuting;
  pending_gen_tid_ = kNoThread;
  pending_gen_time_ = -1;
  pending_waker_tid_ = kNoThread;
  pending_waker_time_ = -1;
}

void ThreadState::EnsureSegmentOpen(TimeNs now) {
  if (seg_start_ >= 0) {
    return;
  }
  seg_start_ = now;
  seg_sid_ = current_sid_;
  seg_state_ = SegmentState::kExecuting;
}

void ThreadState::CloseSegment(TimeNs now) {
  if (seg_start_ < 0) {
    return;
  }
  Segment seg;
  seg.start = seg_start_;
  seg.end = now;
  seg.sid = seg_sid_;
  seg.state = seg_state_;
  seg.generator_tid = pending_gen_tid_;
  seg.generator_time = pending_gen_time_;
  segments_.push_back(seg);
  seg_start_ = -1;
  pending_gen_tid_ = kNoThread;
  pending_gen_time_ = -1;
}

uint32_t ThreadState::OpenInvocation(FuncId func, TimeNs now) {
  EnsureSegmentOpen(now);
  const uint32_t index = static_cast<uint32_t>(invocations_.size());
  Invocation inv;
  inv.start = now;
  inv.func = func;
  inv.sid = current_sid_;
  inv.parent = depth_ > 0 ? static_cast<int32_t>(stack_[depth_ - 1].record_index) : -1;
  invocations_.push_back(inv);
  if (depth_ < kMaxProbeDepth) {
    stack_[depth_] = Frame{func, index};
  }
  ++depth_;
  return index;
}

void ThreadState::CloseInvocation(uint32_t index, TimeNs now) {
  if (depth_ > 0) {
    --depth_;
  }
  if (index < invocations_.size()) {
    invocations_[index].end = now;
  }
}

void ThreadState::SwitchInterval(IntervalId sid, TimeNs now) {
  if (sid == current_sid_ && seg_start_ >= 0) {
    return;
  }
  CloseSegment(now);
  current_sid_ = sid;
  EnsureSegmentOpen(now);
}

void ThreadState::BeginBlocked(SegmentState state, TimeNs now) {
  if (block_depth_++ > 0) {
    return;
  }
  CloseSegment(now);
  seg_start_ = now;
  seg_sid_ = current_sid_;
  seg_state_ = state;
}

void ThreadState::EndBlocked(TimeNs now, ThreadId waker_tid, TimeNs waker_time) {
  if (block_depth_ > 0 && --block_depth_ > 0) {
    // Inner waits keep the outermost blocked segment open, but remember the
    // most recent waker: it is the event that actually freed the thread.
    pending_waker_tid_ = waker_tid;
    pending_waker_time_ = waker_time;
    return;
  }
  if (waker_tid == kNoThread && pending_waker_tid_ != kNoThread) {
    waker_tid = pending_waker_tid_;
    waker_time = pending_waker_time_;
  }
  pending_waker_tid_ = kNoThread;
  pending_waker_time_ = -1;
  if (seg_start_ >= 0) {
    Segment seg;
    seg.start = seg_start_;
    seg.end = now;
    seg.sid = seg_sid_;
    seg.state = seg_state_;
    seg.waker_tid = waker_tid;
    seg.waker_time = waker_time;
    segments_.push_back(seg);
    seg_start_ = -1;
  }
  EnsureSegmentOpen(now);
}

void ThreadState::AttachGeneratorEdge(ThreadId producer_tid, TimeNs enqueue_time,
                                      TimeNs now) {
  CloseSegment(now);
  pending_gen_tid_ = producer_tid;
  pending_gen_time_ = enqueue_time;
  EnsureSegmentOpen(now);
}

void ThreadState::RecordIntervalEvent(IntervalId sid, IntervalEventKind kind,
                                      TimeNs now, IntervalLabel label) {
  interval_events_.push_back(IntervalEvent{sid, now, kind, label});
}

ThreadTrace ThreadState::Collect(TimeNs end_time) {
  CloseSegment(end_time);
  ThreadTrace out;
  out.tid = tid_;
  out.invocations = invocations_;
  out.segments = segments_;
  out.interval_events = interval_events_;
  // Clamp invocations still open at stop time.
  for (Invocation& inv : out.invocations) {
    if (inv.end < 0) {
      inv.end = end_time;
    }
  }
  return out;
}

// --- run control ------------------------------------------------------------

void StartTracing() {
  RuntimeState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.run_epoch.fetch_add(1, std::memory_order_relaxed);
  const uint64_t epoch = state.run_epoch.load(std::memory_order_relaxed);
  for (auto& thread : state.threads) {
    thread->ResetForRun(epoch);
  }
  state.next_interval.store(1, std::memory_order_relaxed);
  state.epoch = Clock::now();
  ResetFullTracer();
  g_tracing.store(true, std::memory_order_seq_cst);
}

Trace StopTracing() {
  g_tracing.store(false, std::memory_order_seq_cst);
  RuntimeState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const TimeNs end_time = Now();
  Trace trace;
  trace.duration = end_time;
  trace.function_names = AllFunctionNames();
  for (auto& thread : state.threads) {
    ThreadTrace tt = thread->Collect(end_time);
    if (!tt.invocations.empty() || !tt.segments.empty() ||
        !tt.interval_events.empty()) {
      trace.threads.push_back(std::move(tt));
    }
  }
  return trace;
}

void EnableFullTrace(bool enabled) {
  g_full_trace.store(enabled, std::memory_order_seq_cst);
}

// --- interval annotations ----------------------------------------------------

IntervalId BeginInterval(IntervalLabel label) {
  if (!IsTracing()) {
    return kNoInterval;
  }
  RuntimeState& state = State();
  const IntervalId sid = state.next_interval.fetch_add(1, std::memory_order_relaxed);
  ThreadState* thread = CurrentThread();
  const TimeNs now = Now();
  thread->RecordIntervalEvent(sid, IntervalEventKind::kBegin, now, label);
  thread->SwitchInterval(sid, now);
  return sid;
}

void EndInterval(IntervalId sid) {
  if (!IsTracing() || sid == kNoInterval) {
    return;
  }
  ThreadState* thread = CurrentThread();
  const TimeNs now = Now();
  thread->RecordIntervalEvent(sid, IntervalEventKind::kEnd, now);
  thread->SwitchInterval(kNoInterval, now);
}

void WorkOnBehalf(IntervalId sid) {
  if (!IsTracing()) {
    return;
  }
  CurrentThread()->SwitchInterval(sid, Now());
}

IntervalId CurrentIntervalId() {
  if (!IsTracing()) {
    return kNoInterval;
  }
  return CurrentThread()->current_sid();
}

}  // namespace vprof
