file(REMOVE_RECURSE
  "CMakeFiles/statkit_histogram_test.dir/histogram_test.cc.o"
  "CMakeFiles/statkit_histogram_test.dir/histogram_test.cc.o.d"
  "statkit_histogram_test"
  "statkit_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
