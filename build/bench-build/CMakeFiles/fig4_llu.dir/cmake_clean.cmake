file(REMOVE_RECURSE
  "../bench/fig4_llu"
  "../bench/fig4_llu.pdb"
  "CMakeFiles/fig4_llu.dir/fig4_llu.cc.o"
  "CMakeFiles/fig4_llu.dir/fig4_llu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_llu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
