#include "src/httpd/server.h"

#include "src/vprof/probe.h"
#include "src/vprof/runtime.h"

namespace httpd {

namespace {

void ByteWork(uint64_t bytes) {
  volatile uint64_t h = 14695981039346656037ull;
  for (uint64_t i = 0; i < bytes; ++i) {
    h = (h ^ i) * 1099511628211ull;
  }
}

}  // namespace

HttpServer::HttpServer(const HttpdConfig& config)
    : config_(config),
      file_disk_(config.file_disk),
      global_list_(config.global_free_blocks, config.bulk_allocation),
      page_cache_(config.page_cache_files, &file_disk_) {
  workers_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Shutdown() {
  if (shut_down_.exchange(true)) {
    return;
  }
  queue_.Close();
  for (auto& worker : workers_) {
    worker.join();
  }
}

RequestStatus HttpServer::HandleRequestBlocking(uint64_t file_id) {
  // Join an enclosing semantic interval when one exists — the network
  // front-end anchors the interval at socket readability, and this call
  // (queue hop included) must stay inside it. Standalone callers still get
  // their own interval.
  vprof::IntervalId sid = vprof::CurrentIntervalId();
  const bool owns_interval = sid == vprof::kNoInterval;
  if (owns_interval) {
    sid = vprof::BeginInterval();
  }
  vprof::Event done;
  bool accepted = true;
  if (config_.max_queue_depth > 0) {
    accepted = queue_.PushIfBelow(PendingRequest{sid, file_id, &done},
                                  static_cast<size_t>(config_.max_queue_depth));
  } else {
    queue_.Push(PendingRequest{sid, file_id, &done});
  }
  if (!accepted) {
    // Shed: answer 503 immediately rather than deepening the backlog. The
    // interval still closes so the profiler sees the (short) rejection.
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (owns_interval) {
      vprof::EndInterval(sid);
    }
    return RequestStatus::kServiceUnavailable;
  }
  done.Wait();
  if (owns_interval) {
    vprof::EndInterval(sid);
  }
  return RequestStatus::kOk;
}

void HttpServer::WorkerLoop() {
  {
    std::lock_guard<std::mutex> lock(tids_mu_);
    worker_tids_.push_back(vprof::CurrentThread()->tid());
  }
  Filter core{Filter::Kind::kCoreOutput, nullptr};
  Filter content_length{Filter::Kind::kContentLength, &core};

  // The paper's fix pre-allocates larger chunks in advance and retains them:
  // in bulk mode the allocator (with its big local cache) lives as long as
  // the worker, so requests rarely touch the global list at all. The
  // baseline mirrors stock APR: the allocator belongs to the connection, so
  // every request starts with an empty local cache and churns the global
  // list — under memory pressure, expensively.
  std::unique_ptr<BucketAllocator> retained;
  if (config_.bulk_allocation) {
    retained = std::make_unique<BucketAllocator>(&global_list_,
                                                 /*bulk=*/true);
  }

  while (auto request = queue_.Pop()) {
    vprof::WorkOnBehalf(request->sid);
    if (retained != nullptr) {
      ProcessRequest(*request, retained.get(), &content_length);
    } else {
      BucketAllocator allocator(&global_list_, /*bulk=*/false);
      ProcessRequest(*request, &allocator, &content_length);
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    request->done->Set();
    vprof::WorkOnBehalf(vprof::kNoInterval);
  }
}

void HttpServer::ProcessRequest(const PendingRequest& request,
                                BucketAllocator* allocator, Filter* chain) {
  VPROF_FUNC("process_request");
  {
    // Request parsing, URI walk, per-request pool setup.
    VPROF_FUNC("ap_process_request_internal");
    allocator->Alloc();
    ByteWork(256);
    allocator->Free();
  }
  if (config_.backend_call) {
    // The data-tier RPC: runs between parsing and the handler, still under
    // process_request, on the originating interval.
    config_.backend_call(request.file_id);
  }
  {
    VPROF_FUNC("default_handler");
    Brigade brigade(allocator);
    AprFileOpen(request.file_id, config_.page_bytes, &brigade, &page_cache_);
    BasicHttpHeader(&brigade);
    brigade.Append(BucketType::kEos, 0);
    ApPassBrigade(chain, &brigade);
  }
}

std::vector<vprof::ThreadId> HttpServer::WorkerTids() const {
  std::lock_guard<std::mutex> lock(tids_mu_);
  return worker_tids_;
}

HttpdStats HttpServer::stats() const {
  HttpdStats stats;
  stats.requests_served = requests_served_.load(std::memory_order_relaxed);
  stats.requests_rejected = requests_rejected_.load(std::memory_order_relaxed);
  stats.system_allocs = global_list_.system_allocs();
  return stats;
}

void HttpServer::RegisterCallGraph(vprof::CallGraph* graph) {
  graph->AddEdge("process_request", "ap_process_request_internal");
  graph->AddEdge("process_request", "default_handler");
  graph->AddEdge("ap_process_request_internal", "apr_bucket_alloc");
  graph->AddEdge("default_handler", "apr_file_open");
  graph->AddEdge("default_handler", "basic_http_header");
  graph->AddEdge("default_handler", "ap_pass_brigade");
  graph->AddEdge("apr_file_open", "apr_bucket_alloc");
  graph->AddEdge("basic_http_header", "apr_bucket_alloc");
  graph->AddEdge("ap_pass_brigade", "ap_pass_brigade");
  graph->AddEdge("ap_pass_brigade", "apr_bucket_alloc");
  graph->AddEdge("ap_pass_brigade", "core_output_filter");
  graph->AddEdge("apr_bucket_alloc", "apr_allocator_alloc");
}

std::unique_ptr<vprof::Vprofd> HttpServer::StartOnlineProfiler(
    vprof::VprofdOptions options) {
  if (options.root_function.empty()) {
    options.root_function = "process_request";
  }
  if (options.graph == nullptr) {
    auto graph = std::make_shared<vprof::CallGraph>();
    RegisterCallGraph(graph.get());
    options.graph = std::move(graph);
  }
  auto daemon = std::make_unique<vprof::Vprofd>(std::move(options));
  daemon->Start();
  return daemon;
}

}  // namespace httpd
