# Empty compiler generated dependencies file for minipg.
# This may be replaced when dependencies are built.
