# Empty compiler generated dependencies file for statkit_histogram_test.
# This may be replaced when dependencies are built.
