// minidb buffer pool: fixed set of page frames with an LRU replacement list
// protected by one global mutex, modeled after InnoDB's buf_pool->mutex.
//
// The paper's 2-WH MySQL case study (Section 4.5) attributes ~33% of latency
// variance to `buf_pool_mutex_enter`, dominated by the call site that moves a
// page to the LRU head on access, and evaluates two mitigations we also
// implement: a bounded-spin Lazy LRU Update (LLU) that skips the move when
// the mutex is busy, and replacing the sleeping mutex with a spin lock.
//
// Page presence is tracked in a hash table under its own short-lived latch
// (InnoDB's page hash), so the global mutex protects only LRU maintenance,
// eviction, and page I/O — including the write-back of a dirty victim while
// holding the mutex, the single-page-flush pathology the MySQL community
// later fixed with multi-threaded LRU flushing (paper Section 4.8).
#ifndef SRC_MINIDB_BUFFER_POOL_H_
#define SRC_MINIDB_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "src/minidb/config.h"
#include "src/simio/disk.h"
#include "src/vprof/sync.h"

namespace minidb {

using PageId = uint64_t;

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t clean_evictions = 0;
  uint64_t dirty_evictions = 0;
  uint64_t lru_moves = 0;
  uint64_t lru_moves_skipped = 0;  // LLU deferrals
};

class BufferPool {
 public:
  BufferPool(int capacity_pages, BufferPolicy policy, int llu_try_iterations,
             simio::Disk* disk);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins the page for an access (buf_page_get). Blocks for simulated I/O on
  // a miss; marks the frame dirty when for_write is true.
  void GetPage(PageId page_id, bool for_write);

  BufferPoolStats stats() const;
  size_t resident_pages() const;
  int capacity() const { return capacity_; }

  // Invariant check for tests: LRU size == hash size <= capacity, no
  // duplicate page ids.
  bool CheckInvariants() const;

 private:
  struct Frame {
    PageId page_id = 0;
    bool dirty = false;
    bool deferred_move = false;
    std::list<PageId>::iterator lru_pos;
  };

  // Instrumented acquisition of the global pool mutex (blocking variant).
  void PoolMutexEnter();
  // Spin-lock variant: burns CPU instead of sleeping, still instrumented.
  void PoolMutexSpinEnter();
  // LLU variant: bounded try; returns false if the move should be skipped.
  bool PoolMutexTryEnterBounded();

  void HandleMiss(PageId page_id, bool for_write);
  void TouchLru(Frame& frame);

  const int capacity_;
  const BufferPolicy policy_;
  const int llu_try_iterations_;
  simio::Disk* disk_;

  mutable std::mutex hash_mu_;  // the page-hash latch (short critical sections)
  std::unordered_map<PageId, Frame> frames_;

  vprof::Mutex pool_mu_;      // the global buffer-pool mutex
  std::list<PageId> lru_;     // front = most recently used

  mutable std::mutex stats_mu_;
  BufferPoolStats stats_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_BUFFER_POOL_H_
