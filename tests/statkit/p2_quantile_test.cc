#include "src/statkit/p2_quantile.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/distributions.h"
#include "src/statkit/rng.h"
#include "src/statkit/summary.h"

namespace statkit {
namespace {

TEST(P2QuantileTest, EmptyIsZero) {
  P2Quantile q(0.99);
  EXPECT_DOUBLE_EQ(q.Value(), 0.0);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.Add(3.0);
  q.Add(1.0);
  q.Add(2.0);
  // Median of {1,2,3} by nearest rank: ceil(0.5*3)=2nd smallest = 2.
  EXPECT_DOUBLE_EQ(q.Value(), 2.0);
}

// Accuracy against the exact percentile for several quantiles and
// distributions.
struct P2Case {
  double quantile;
  double sigma;  // lognormal shape
};

class P2Accuracy : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2Accuracy, TracksExactPercentile) {
  const P2Case c = GetParam();
  Rng rng(static_cast<uint64_t>(c.quantile * 1000) + 5);
  P2Quantile q(c.quantile);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double x = SampleLognormal(rng, 5.0, c.sigma);
    q.Add(x);
    values.push_back(x);
  }
  std::sort(values.begin(), values.end());
  const double exact = PercentileOfSorted(values, c.quantile * 100.0);
  EXPECT_NEAR(q.Value(), exact, exact * 0.15)
      << "quantile=" << c.quantile << " sigma=" << c.sigma;
}

INSTANTIATE_TEST_SUITE_P(Sweep, P2Accuracy,
                         ::testing::Values(P2Case{0.5, 0.5}, P2Case{0.9, 0.5},
                                           P2Case{0.99, 0.5}, P2Case{0.5, 1.2},
                                           P2Case{0.95, 1.2}));

TEST(P2QuantileTest, MonotoneUnderSortedInput) {
  P2Quantile q(0.9);
  for (int i = 1; i <= 1000; ++i) {
    q.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(q.Value(), 900.0, 30.0);
}

}  // namespace
}  // namespace statkit
