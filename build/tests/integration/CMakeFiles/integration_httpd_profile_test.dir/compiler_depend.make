# Empty compiler generated dependencies file for integration_httpd_profile_test.
# This may be replaced when dependencies are built.
