#include "src/statkit/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/statkit/welford.h"

namespace statkit {

double PercentileOfSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary Summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) {
    return s;
  }
  StreamingMoments moments;
  for (double x : sample) {
    moments.Add(x);
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  s.count = moments.count();
  s.mean = moments.mean();
  s.variance = moments.variance();
  s.stddev = moments.stddev();
  s.cv = moments.cv();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = PercentileOfSorted(sorted, 50.0);
  s.p90 = PercentileOfSorted(sorted, 90.0);
  s.p95 = PercentileOfSorted(sorted, 95.0);
  s.p99 = PercentileOfSorted(sorted, 99.0);
  s.p999 = PercentileOfSorted(sorted, 99.9);
  return s;
}

double ReductionPercent(double a, double b) {
  if (a == 0.0) {
    return 0.0;
  }
  return 100.0 * (a - b) / a;
}

std::string Summary::ToString() const {
  std::ostringstream out;
  out << "n=" << count << " mean=" << mean << " var=" << variance << " sd=" << stddev
      << " cv=" << cv << " p50=" << p50 << " p99=" << p99 << " max=" << max;
  return out.str();
}

}  // namespace statkit
