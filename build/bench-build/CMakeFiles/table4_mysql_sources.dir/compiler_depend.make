# Empty compiler generated dependencies file for table4_mysql_sources.
# This may be replaced when dependencies are built.
