# Empty dependencies file for minidb_lock_manager_test.
# This may be replaced when dependencies are built.
