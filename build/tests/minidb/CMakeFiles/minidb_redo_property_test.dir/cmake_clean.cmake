file(REMOVE_RECURSE
  "CMakeFiles/minidb_redo_property_test.dir/redo_property_test.cc.o"
  "CMakeFiles/minidb_redo_property_test.dir/redo_property_test.cc.o.d"
  "minidb_redo_property_test"
  "minidb_redo_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_redo_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
