// Simulated storage device.
//
// The paper's case studies run against physical disks whose service-time
// variance (especially fsync) is one of the latency-variance sources VProfiler
// surfaces (MySQL fil_flush, Postgres WAL flush). This module substitutes a
// disk model: lognormal per-op service time, bandwidth-proportional transfer
// time, occasional fsync stalls (write-cache flushes), and optional
// single-spindle serialization so concurrent requests queue behind each other.
#ifndef SRC_SIMIO_DISK_H_
#define SRC_SIMIO_DISK_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "src/statkit/rng.h"

namespace simio {

struct DiskConfig {
  // Lognormal parameters of the base service time, in microseconds.
  double read_mu = 4.0;     // exp(4.0) ~ 55us median
  double read_sigma = 0.35;
  double write_mu = 3.7;    // ~40us median (buffered write)
  double write_sigma = 0.3;
  double fsync_mu = 5.3;    // ~200us median
  double fsync_sigma = 0.45;

  // With probability spike_prob an fsync takes spike_scale times longer
  // (models periodic device write-cache flushes / FTL garbage collection).
  double fsync_spike_prob = 0.03;
  double fsync_spike_scale = 6.0;

  // Transfer bandwidth for the size-dependent component.
  double bytes_per_us = 400.0;  // ~400 MB/s

  // When true, operations serialize on the device (one spindle): concurrent
  // callers queue, which is itself a variance source.
  bool serialize_access = true;

  uint64_t seed = 42;
};

// Thread-safe simulated disk. Each operation blocks the calling thread for
// the sampled service duration.
class Disk {
 public:
  explicit Disk(const DiskConfig& config = DiskConfig{});

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Reads `bytes`; blocks for the sampled service time.
  void Read(uint64_t bytes);

  // Writes `bytes` into the (simulated) device write buffer.
  void Write(uint64_t bytes);

  // Forces buffered writes to stable storage; the slow, high-variance op.
  void Fsync();

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }

  const DiskConfig& config() const { return config_; }

 private:
  // Samples a lognormal service time (microseconds) plus transfer time.
  double SampleServiceUs(double mu, double sigma, uint64_t bytes);
  void Service(double service_us);

  DiskConfig config_;
  std::mutex rng_mu_;
  statkit::Rng rng_;
  std::mutex device_mu_;  // held for the service duration when serializing
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> fsyncs_{0};
};

// Blocks the calling thread for approximately `us` microseconds.
void SleepUs(double us);

}  // namespace simio

#endif  // SRC_SIMIO_DISK_H_
