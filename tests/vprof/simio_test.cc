#include "src/simio/disk.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/summary.h"

namespace simio {
namespace {

double ElapsedUs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

TEST(DiskTest, CountsOperations) {
  DiskConfig config;
  config.read_mu = 1.0;  // keep the test fast
  config.write_mu = 1.0;
  config.fsync_mu = 1.0;
  Disk disk(config);
  disk.Read(100);
  disk.Write(100);
  disk.Write(100);
  disk.Fsync();
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 2u);
  EXPECT_EQ(disk.fsyncs(), 1u);
}

TEST(DiskTest, FsyncSlowerThanWrite) {
  DiskConfig config;
  config.fsync_spike_prob = 0.0;
  Disk disk(config);
  double write_total = 0.0;
  double fsync_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    write_total += ElapsedUs([&] { disk.Write(256); });
    fsync_total += ElapsedUs([&] { disk.Fsync(); });
  }
  EXPECT_GT(fsync_total, write_total);
}

TEST(DiskTest, TransferTimeScalesWithBytes) {
  DiskConfig config;
  config.read_mu = 1.0;
  config.read_sigma = 0.01;
  config.bytes_per_us = 100.0;
  config.serialize_access = false;
  Disk disk(config);
  double small = 0.0;
  double large = 0.0;
  for (int i = 0; i < 10; ++i) {
    small += ElapsedUs([&] { disk.Read(100); });
    large += ElapsedUs([&] { disk.Read(100000); });  // +1000us transfer
  }
  EXPECT_GT(large, small + 5000.0);
}

TEST(DiskTest, DeterministicSeedGivesSameCounts) {
  // The RNG stream is seed-driven: two disks with the same seed spike on the
  // same fsyncs. We can't observe spikes directly, so compare total time
  // loosely: identical op sequences should take similar simulated service
  // time (sampled identically).
  DiskConfig config;
  config.fsync_mu = 2.0;
  config.seed = 7;
  Disk a(config);
  Disk b(config);
  double ta = 0.0;
  double tb = 0.0;
  for (int i = 0; i < 10; ++i) {
    ta += ElapsedUs([&] { a.Fsync(); });
  }
  for (int i = 0; i < 10; ++i) {
    tb += ElapsedUs([&] { b.Fsync(); });
  }
  EXPECT_NEAR(ta, tb, 0.5 * std::max(ta, tb) + 2000.0);
}

TEST(DiskTest, SerializedAccessQueues) {
  DiskConfig config;
  config.fsync_mu = 6.2;  // ~500us median
  config.fsync_sigma = 0.05;
  config.fsync_spike_prob = 0.0;
  config.serialize_access = true;
  Disk disk(config);
  // Two threads fsync concurrently: with a single spindle, total wall time
  // must be at least ~2 service times.
  const double elapsed = ElapsedUs([&] {
    std::thread t1([&] { disk.Fsync(); });
    std::thread t2([&] { disk.Fsync(); });
    t1.join();
    t2.join();
  });
  EXPECT_GT(elapsed, 800.0);
}

TEST(SleepUsTest, SleepsAtLeastRequested) {
  const double elapsed = ElapsedUs([] { SleepUs(2000.0); });
  EXPECT_GE(elapsed, 1800.0);
}

TEST(SleepUsTest, NonPositiveIsNoop) {
  const double elapsed = ElapsedUs([] {
    SleepUs(0.0);
    SleepUs(-5.0);
  });
  EXPECT_LT(elapsed, 1000.0);
}

}  // namespace
}  // namespace simio
