// Crash-recovery property tests for WAL group commit (ISSUE: multi-core
// scale-out), mirroring tests/minidb/group_commit_crash_test.cc: the
// leader's batch write is torn at EVERY byte offset via the disk torn_write
// failpoint's value payload, paired with a power loss before the fsync.
// Recovery must expose a prefix of whole records — never a torn batch
// interior — and never drop an LSN that Flush() acknowledged, in both
// commit modes.
#include "src/minipg/wal.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/simio/disk.h"
#include "src/statkit/rng.h"

namespace minipg {
namespace {

simio::DiskConfig FastDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 1.0;
  config.fault_scope = scope;
  config.seed = 13;
  return config;
}

const uint64_t kBatchSizes[] = {48, 112, 9, 256, 31};

uint64_t BatchBytes() {
  uint64_t total = 0;
  for (uint64_t b : kBatchSizes) {
    total += b;
  }
  return total;
}

struct IntactPrefix {
  size_t records = 0;
  uint64_t bytes = 0;
};

IntactPrefix IntactBelow(uint64_t offset) {
  IntactPrefix prefix;
  for (uint64_t b : kBatchSizes) {
    if (prefix.bytes + b > offset) {
      break;
    }
    prefix.bytes += b;
    ++prefix.records;
  }
  return prefix;
}

// Seed under which CrashInternal keeps every at-risk device record, so the
// injected tear alone decides the recovered boundary (same draw the unit
// makes: statkit::Rng(seed).NextBelow(at_risk + 1) == at_risk).
uint64_t PickKeepAllSeed(uint64_t at_risk) {
  for (uint64_t seed = 0; seed < 100000; ++seed) {
    statkit::Rng rng(seed);
    if (rng.NextBelow(at_risk + 1) == at_risk) {
      return seed;
    }
  }
  ADD_FAILURE() << "no keep-all seed found for at_risk=" << at_risk;
  return 0;
}

class WalGroupCommitCrashTest : public ::testing::TestWithParam<CommitMode> {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};

TEST_P(WalGroupCommitCrashTest, TornBatchSweepRecoversExactWholeRecordPrefix) {
  const uint64_t total = BatchBytes();
  for (uint64_t offset = 0; offset <= total; ++offset) {
    SCOPED_TRACE("tear offset " + std::to_string(offset));
    WalUnit unit(FastDisk("walgc_sweep"), GetParam());

    // Durable prefix the crash must never touch.
    uint64_t acked = 0;
    for (int i = 0; i < 3; ++i) {
      const uint64_t lsn = unit.Insert(50);
      ASSERT_NE(lsn, 0u);
      ASSERT_EQ(unit.Flush(lsn), WalStatus::kOk);
      acked = lsn;
    }
    const size_t durable = unit.durable_record_count();

    // The doomed batch: inserted but not flushed, drained by one leader.
    uint64_t last = 0;
    for (uint64_t bytes : kBatchSizes) {
      last = unit.Insert(bytes);
      ASSERT_NE(last, 0u);
    }

    const IntactPrefix intact = IntactBelow(offset);
    const bool crosses =
        intact.records < std::size(kBatchSizes) && offset > intact.bytes;
    const uint64_t at_risk =
        static_cast<uint64_t>(intact.records) + (crosses ? 1 : 0);
    unit.set_crash_seed(PickKeepAllSeed(at_risk));

    fault::Activate("walgc_sweep/torn_write",
                    fault::Trigger::AlwaysWithValue(offset));
    fault::Activate("wal/crash_after_write", fault::Trigger::OneShot());
    EXPECT_EQ(unit.Flush(last), WalStatus::kCrashed);
    EXPECT_TRUE(unit.crashed());
    fault::DeactivateAll();

    const WalRecoveryResult recovered = unit.Recover();
    EXPECT_EQ(recovered.records_recovered, durable + intact.records);
    EXPECT_EQ(recovered.torn_truncated, crosses ? 1u : 0u);
    EXPECT_EQ(recovered.recovered_lsn,
              intact.records > 0 ? acked + intact.bytes : acked);
    EXPECT_GE(recovered.recovered_lsn, acked);

    // The unit reopens and flushes again.
    const uint64_t fresh = unit.Insert(32);
    ASSERT_NE(fresh, 0u);
    EXPECT_EQ(unit.Flush(fresh), WalStatus::kOk);
  }
}

TEST_P(WalGroupCommitCrashTest, TornBatchSweepWithCacheLossStaysWholeRecords) {
  const uint64_t total = BatchBytes();
  std::vector<uint64_t> boundaries{0};
  {
    uint64_t cum = 0;
    for (uint64_t b : kBatchSizes) {
      boundaries.push_back(cum += b);
    }
  }
  for (uint64_t offset = 0; offset <= total; ++offset) {
    SCOPED_TRACE("tear offset " + std::to_string(offset));
    WalUnit unit(FastDisk("walgc_sweep2"), GetParam());

    uint64_t acked = 0;
    for (int i = 0; i < 3; ++i) {
      const uint64_t lsn = unit.Insert(50);
      ASSERT_NE(lsn, 0u);
      ASSERT_EQ(unit.Flush(lsn), WalStatus::kOk);
      acked = lsn;
    }
    uint64_t last = 0;
    for (uint64_t bytes : kBatchSizes) {
      last = unit.Insert(bytes);
      ASSERT_NE(last, 0u);
    }
    unit.set_crash_seed(offset * 2654435761ull + 23);

    fault::Activate("walgc_sweep2/torn_write",
                    fault::Trigger::AlwaysWithValue(offset));
    fault::Activate("wal/crash_after_write", fault::Trigger::OneShot());
    EXPECT_EQ(unit.Flush(last), WalStatus::kCrashed);
    fault::DeactivateAll();

    const WalRecoveryResult recovered = unit.Recover();
    EXPECT_GE(recovered.recovered_lsn, acked) << "acked LSN lost";
    const uint64_t into_batch = recovered.recovered_lsn - acked;
    EXPECT_TRUE(std::find(boundaries.begin(), boundaries.end(), into_batch) !=
                boundaries.end())
        << "recovered mid-record, " << into_batch << " bytes into the batch";
    EXPECT_LE(into_batch, IntactBelow(offset).bytes);
  }
}

// Concurrent backends racing a mid-batch crash: every Flush() acknowledged
// kOk before the crash must survive recovery, in both modes.
TEST_P(WalGroupCommitCrashTest, ConcurrentAckedFlushesSurviveMidBatchCrash) {
  WalUnit unit(FastDisk("walgc_race"), GetParam());
  unit.set_crash_seed(4321);

  fault::Activate("walgc_race/torn_write", fault::Trigger::OneShot(7));
  fault::Activate("wal/crash_after_write", fault::Trigger::OneShot(7));

  constexpr int kThreads = 4;
  constexpr int kFlushesPerThread = 30;
  std::vector<std::vector<uint64_t>> acked(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFlushesPerThread; ++i) {
        const uint64_t lsn = unit.Insert(40 + 11 * static_cast<uint64_t>(t));
        if (lsn == 0) {
          return;  // crashed
        }
        if (unit.Flush(lsn) == WalStatus::kOk) {
          acked[static_cast<size_t>(t)].push_back(lsn);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  fault::DeactivateAll();
  ASSERT_TRUE(unit.crashed());

  const WalRecoveryResult recovered = unit.Recover();
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t lsn : acked[static_cast<size_t>(t)]) {
      EXPECT_LE(lsn, recovered.recovered_lsn)
          << "backend " << t << " lost an acked LSN";
    }
  }
  EXPECT_GE(unit.stats().crashes, 1u);
}

INSTANTIATE_TEST_SUITE_P(CommitModes, WalGroupCommitCrashTest,
                         ::testing::Values(CommitMode::kGroupCommit,
                                           CommitMode::kExclusive),
                         [](const ::testing::TestParamInfo<CommitMode>& info) {
                           return info.param == CommitMode::kGroupCommit
                                      ? "GroupCommit"
                                      : "Exclusive";
                         });

}  // namespace
}  // namespace minipg
