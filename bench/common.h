// Shared helpers for the experiment harnesses in bench/. Each binary
// regenerates one table or figure of the paper's evaluation (Section 4) and
// prints the measured rows next to the paper's reported values. Absolute
// numbers differ (simulated substrate, single machine); the comparison target
// is the *shape*: which factor dominates, which fix wins, by roughly what
// factor.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/vprof/analysis/profiler.h"
#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/httpd/server.h"
#include "src/statkit/summary.h"
#include "src/workload/ab.h"
#include "src/workload/tpcc.h"

namespace bench {

// Latency triple used throughout the paper: mean, variance, p99.
struct LatencyStats {
  double mean_ms = 0.0;
  double variance_ms2 = 0.0;
  double p99_ms = 0.0;
  double throughput = 0.0;
  size_t samples = 0;
};

inline LatencyStats ToStats(std::span<const double> latencies_ns,
                            double throughput = 0.0) {
  const statkit::Summary s = statkit::Summarize(latencies_ns);
  LatencyStats out;
  out.mean_ms = s.mean / 1e6;
  out.variance_ms2 = s.variance / 1e12;
  out.p99_ms = s.p99 / 1e6;
  out.throughput = throughput;
  out.samples = s.count;
  return out;
}

inline void PrintStatsRow(const char* label, const LatencyStats& s) {
  std::printf("  %-28s mean=%8.3f ms  var=%10.4f ms^2  p99=%8.3f ms  (n=%zu)\n",
              label, s.mean_ms, s.variance_ms2, s.p99_ms, s.samples);
}

// Prints "measured vs paper" reduction rows.
inline void PrintReductionRow(const char* metric, double baseline,
                              double treated, double paper_pct) {
  const double measured = statkit::ReductionPercent(baseline, treated);
  std::printf("  %-22s measured reduction: %6.1f%%   (paper: %5.1f%%)\n", metric,
              measured, paper_pct);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

// --- paper-regime configurations -------------------------------------------

// minidb "128-WH" regime: memory-resident, record-lock contention dominates.
inline minidb::EngineConfig MysqlMemoryResidentConfig() {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  return config;
}

// minidb "2-WH" regime: tiny buffer pool, buffer-pool mutex dominates.
inline minidb::EngineConfig MysqlMemoryConstrainedConfig() {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryConstrained();
  return config;
}

inline workload::TpccOptions TpccQuick(int threads, int txns_per_thread,
                                       uint64_t seed = 99) {
  workload::TpccOptions options;
  options.threads = threads;
  options.transactions_per_thread = txns_per_thread;
  options.seed = seed;
  return options;
}

inline minipg::PgConfig PostgresConfig(int wal_units) {
  minipg::PgConfig config;
  config.wal_units = wal_units;
  return config;
}

inline httpd::HttpdConfig ApacheConfig(bool bulk_allocation) {
  httpd::HttpdConfig config;
  config.workers = 4;
  config.bulk_allocation = bulk_allocation;
  config.global_free_blocks = 8;  // the paper's memory-pressure regime
  return config;
}

// --- fix-comparison runners ---------------------------------------------------

// Builds a fresh minidb engine for `config`, warms it up, runs the TPC-C
// workload untraced, and summarizes committed-transaction latencies.
inline LatencyStats RunMinidb(const minidb::EngineConfig& config,
                              const workload::TpccOptions& options,
                              int warmup_txns_per_thread = 100) {
  minidb::Engine engine(config);
  workload::TpccOptions warmup = options;
  warmup.transactions_per_thread = warmup_txns_per_thread;
  workload::TpccDriver(&engine, warmup).Run();
  const workload::TpccResult result =
      workload::TpccDriver(&engine, options).Run();
  return ToStats(result.latencies_ns, result.throughput_tps);
}

inline LatencyStats RunMinipg(const minipg::PgConfig& config,
                              const workload::TpccOptions& options) {
  minipg::PgEngine engine(config);
  workload::TpccDriver driver(nullptr, options);
  const workload::TpccResult result = driver.RunWith(
      [&engine](const minidb::TxnRequest& request) {
        return engine.Execute(request);
      },
      /*warehouses=*/8);
  return ToStats(result.latencies_ns, result.throughput_tps);
}

inline LatencyStats RunHttpd(const httpd::HttpdConfig& config,
                             const workload::AbOptions& options) {
  httpd::HttpServer server(config);
  workload::AbDriver driver(&server, options);
  const workload::AbResult result = driver.Run();
  server.Shutdown();
  return ToStats(result.latencies_ns, result.requests_per_s);
}

// --- profile-report printing -------------------------------------------------

// Root-to-node path label, e.g. "run_transaction/row_upd/os_event_wait".
inline std::string NodePath(const vprof::VarianceAnalysis& va, vprof::NodeId id) {
  std::vector<std::string> parts;
  while (id > 0) {
    parts.push_back(va.NodeLabel(id));
    id = va.node(id).parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) {
      out += "/";
    }
    out += *it;
  }
  return out;
}

inline void PrintTopFactors(const vprof::ProfileResult& result, size_t k) {
  std::printf("  overall: mean=%.3f ms, variance=%.4f ms^2, intervals=%zu, runs=%d\n",
              result.overall_mean_ns / 1e6, result.overall_variance / 1e12,
              result.latencies_ns.size(), result.runs);
  std::printf("  %-4s %-46s %s\n", "rank", "factor", "contribution to overall variance");
  size_t rank = 1;
  for (const auto& factor : result.all_factors) {
    if (rank > k) {
      break;
    }
    if (factor.contribution < 0.005) {
      continue;
    }
    std::printf("  %-4zu %-46s %6.1f%%\n", rank++,
                factor.Label(result.function_names).c_str(),
                factor.contribution * 100.0);
  }
}

// Per-call-site view: tree nodes for `function` with their contributions,
// reproducing the paper's os_event_wait [A] / [B] split.
inline void PrintFunctionCallSites(const vprof::ProfileResult& result,
                                   const std::string& function) {
  const auto& va = *result.analysis;
  std::vector<std::pair<double, std::string>> rows;
  for (size_t i = 1; i < va.node_count(); ++i) {
    const auto id = static_cast<vprof::NodeId>(i);
    if (va.NodeLabel(id) == function) {
      rows.emplace_back(va.NodeContribution(id), NodePath(va, id));
    }
  }
  std::sort(rows.rbegin(), rows.rend());
  for (const auto& [contribution, path] : rows) {
    std::printf("    %6.1f%%  %s\n", contribution * 100.0, path.c_str());
  }
}

}  // namespace bench

#endif  // BENCH_COMMON_H_
