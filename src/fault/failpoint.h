// Deterministic fault-injection framework.
//
// A failpoint is a named site in production code where a test (or a chaos
// experiment) can inject a failure. Sites evaluate to "fire" or "pass" via
// fault::Triggered("component/fault"); tests arm them with a Trigger —
// one-shot, every-Nth, or seeded probability — optionally scoped to a block
// via ScopedFailpoint. Everything is deterministic: a probability trigger
// draws from its own statkit::Rng seeded at activation, and hit/trigger
// counters make the firing sequence observable and replayable.
//
// Cost model: the framework sits on hot paths (disk ops, the probe runtime),
// so the inactive case must be near-free. fault::AnyActive() is one relaxed
// atomic load; Triggered() checks it before touching the registry, and every
// call site is expected to be reached with zero failpoints armed in normal
// operation. The armed path takes a global mutex — acceptable, since a run
// with failpoints armed is by definition a failure experiment.
#ifndef SRC_FAULT_FAILPOINT_H_
#define SRC_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace fault {

// When and how often an armed failpoint fires.
struct Trigger {
  enum class Kind : uint8_t {
    kAlways,       // every hit fires
    kOneShot,      // fires exactly once, on hit number `skip` (0-based)
    kEveryNth,     // fires on hits n-1, 2n-1, ... (every n-th evaluation)
    kProbability,  // fires with probability p, drawn from a seeded Rng
  };

  // Sentinel for `value`: the firing site falls back to its own behavior
  // (e.g. simio picks a seeded-random torn-write prefix).
  static constexpr uint64_t kNoValue = ~0ull;

  Kind kind = Kind::kAlways;
  uint64_t n = 1;        // kEveryNth period
  uint64_t skip = 0;     // kOneShot: hits to let pass before firing
  double p = 1.0;        // kProbability
  uint64_t seed = 1;     // kProbability Rng seed
  // Optional 64-bit payload carried to the firing site (TriggeredValue).
  // Deterministic fault *shaping*: e.g. the exact byte offset at which a
  // torn write tears, so recovery tests can sweep every offset.
  uint64_t value = kNoValue;

  static Trigger Always() { return Trigger{}; }
  static Trigger AlwaysWithValue(uint64_t value) {
    Trigger t;
    t.value = value;
    return t;
  }
  static Trigger OneShotWithValue(uint64_t value, uint64_t skip_hits = 0) {
    Trigger t;
    t.kind = Kind::kOneShot;
    t.skip = skip_hits;
    t.value = value;
    return t;
  }
  static Trigger OneShot(uint64_t skip_hits = 0) {
    Trigger t;
    t.kind = Kind::kOneShot;
    t.skip = skip_hits;
    return t;
  }
  static Trigger EveryNth(uint64_t nth) {
    Trigger t;
    t.kind = Kind::kEveryNth;
    t.n = nth == 0 ? 1 : nth;
    return t;
  }
  static Trigger Probability(double p, uint64_t seed) {
    Trigger t;
    t.kind = Kind::kProbability;
    t.p = p;
    t.seed = seed;
    return t;
  }
};

namespace detail {
// Count of currently armed failpoints; the fast-path gate.
extern std::atomic<uint32_t> g_active_count;

// Slow path of Triggered(): registry lookup + trigger evaluation. When
// `value` is non-null and the trigger fires, receives the trigger's payload.
bool Evaluate(std::string_view name, uint64_t* value = nullptr);
}  // namespace detail

// True when at least one failpoint is armed anywhere in the process.
inline bool AnyActive() {
  return detail::g_active_count.load(std::memory_order_relaxed) != 0;
}

// Arms `name` with `trigger` (re-arming replaces the trigger and resets its
// per-activation state; lifetime counters survive).
void Activate(std::string_view name, Trigger trigger);

// Disarms `name`. No-op if not armed.
void Deactivate(std::string_view name);

// Disarms everything (test teardown).
void DeactivateAll();

// True while `name` is armed.
bool IsActive(std::string_view name);

// Lifetime counters (across re-activations, until ResetCounters).
uint64_t HitCount(std::string_view name);      // evaluations while armed
uint64_t TriggerCount(std::string_view name);  // evaluations that fired
void ResetCounters();

// The injection site: true when `name` is armed and its trigger fires.
inline bool Triggered(std::string_view name) {
  if (!AnyActive()) [[likely]] {
    return false;
  }
  return detail::Evaluate(name);
}

// As Triggered(), but also reports the armed trigger's payload (`value`,
// Trigger::kNoValue unless the arming test set one) when it fires.
inline bool TriggeredValue(std::string_view name, uint64_t* value) {
  if (!AnyActive()) [[likely]] {
    return false;
  }
  return detail::Evaluate(name, value);
}

// RAII activation for test scopes: arms on construction, disarms on
// destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view name, Trigger trigger) : name_(name) {
    Activate(name_, trigger);
  }
  ~ScopedFailpoint() { Deactivate(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace fault

#endif  // SRC_FAULT_FAILPOINT_H_
