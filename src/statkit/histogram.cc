#include "src/statkit/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace statkit {

LogHistogram::LogHistogram(double min_value, double max_value, int buckets_per_decade)
    : min_value_(min_value) {
  const double decades = std::log10(max_value / min_value);
  const size_t buckets =
      static_cast<size_t>(std::ceil(decades * buckets_per_decade)) + 1;
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / buckets_per_decade;
  inv_log_step_ = static_cast<double>(buckets_per_decade);
  counts_.assign(buckets, 0);
}

size_t LogHistogram::BucketFor(double value) const {
  if (value <= min_value_) {
    return 0;
  }
  const double pos = (std::log10(value) - log_min_) * inv_log_step_;
  const size_t idx = static_cast<size_t>(pos);
  return std::min(idx, counts_.size() - 1);
}

void LogHistogram::Add(double value) {
  ++count_;
  ++counts_[BucketFor(value)];
}

void LogHistogram::Merge(const LogHistogram& other) {
  const size_t n = std::min(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
}

double LogHistogram::bucket_lower_bound(size_t i) const {
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const uint64_t next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket in log space.
      const double frac =
          (target - static_cast<double>(cumulative)) / static_cast<double>(counts_[i]);
      const double lo = log_min_ + static_cast<double>(i) * log_step_;
      return std::pow(10.0, lo + frac * log_step_);
    }
    cumulative = next;
  }
  return bucket_lower_bound(counts_.size() - 1);
}

std::string LogHistogram::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    out << "[" << bucket_lower_bound(i) << ", " << bucket_lower_bound(i + 1) << "): "
        << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace statkit
