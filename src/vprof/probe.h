// Function-entry probes.
//
// VPROF_FUNC("name") at the top of a function body declares a
// constant-initialized probe site (no static-init guard on entry) and
// creates a scoped probe. The probe is one relaxed load when tracing is off,
// and a relaxed load plus one bitmap-bit test when the function is not
// selected for the current refinement iteration — which is what keeps
// VProfiler's overhead an order of magnitude below binary-injection tracers
// (paper Section 4.1). The site's FuncId is resolved through the registry
// lazily, the first time the site is reached with tracing active.
#ifndef SRC_VPROF_PROBE_H_
#define SRC_VPROF_PROBE_H_

#include "src/vprof/full_tracer.h"
#include "src/vprof/runtime.h"

namespace vprof {

class ScopedProbe {
 public:
  explicit ScopedProbe(FuncId func) {
    if (!IsTracing()) {
      return;
    }
    Enter(func);
  }

  explicit ScopedProbe(ProbeSite& site) {
    if (!IsTracing()) {
      return;
    }
    Enter(site.id());
  }

  ~ScopedProbe() {
    if (thread_ != nullptr) {
      // CloseInvocation drops the close if tracing restarted underneath
      // this probe (the handle's epoch no longer matches).
      thread_->CloseInvocation(handle_);
      return;
    }
    if (full_ != kInvalidFunc) {
      FullTracerOnExit(full_);
    }
  }

  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  void Enter(FuncId func) {
    if (IsFullTrace()) [[unlikely]] {
      // DTrace-like comparison mode: record every function unconditionally.
      FullTracerOnEntry(func);
      full_ = func;
      return;
    }
    if (!IsFunctionEnabled(func)) {
      return;
    }
    ThreadState* thread = CurrentThread();
    const ThreadState::OpenHandle handle = thread->OpenInvocation(func);
    if (handle.slot != nullptr) {
      thread_ = thread;
      handle_ = handle;
    }
  }

  ThreadState* thread_ = nullptr;
  ThreadState::OpenHandle handle_;
  FuncId full_ = kInvalidFunc;
};

}  // namespace vprof

// Instruments the enclosing function under the given profile name. The site
// is constant-initialized (constexpr constructor), so entering the function
// costs no thread-safe-static guard check.
#define VPROF_FUNC(name)                                \
  static ::vprof::ProbeSite vprof_local_site{name};     \
  ::vprof::ScopedProbe vprof_local_probe(vprof_local_site)

#endif  // SRC_VPROF_PROBE_H_
