// minidb buffer pool: fixed set of page frames with LRU replacement,
// modeled after InnoDB's buf_pool. Since PR 7 the pool is *sharded*
// (InnoDB `buf_pool_instances`-style): pages are assigned to one of N
// independent pool instances by a hash of their page id, and each instance
// has its own LRU list, frame hash, flush state, and pool mutex. With
// instances=1 the pool degenerates to the paper's single-mutex InnoDB
// (the 2-WH case-study bottleneck); with instances=N the hit-path mutex
// contention divides by ~N, which is the first leg of the multi-core
// scaling study (BENCH_scale.json).
//
// The paper's 2-WH MySQL case study (Section 4.5) attributes ~33% of latency
// variance to `buf_pool_mutex_enter`, dominated by the call site that moves a
// page to the LRU head on access, and evaluates two mitigations we also
// implement: a bounded-spin Lazy LRU Update (LLU) that skips the move when
// the mutex is busy, and replacing the sleeping mutex with a spin lock.
// All three acquisition paths stay instrumented per shard under the same
// `buf_pool_mutex_enter` probe, so vprof attribution survives sharding and
// the variance tree keeps one aggregate factor for the pool mutex.
//
// Page presence is tracked in a per-shard hash table under its own
// short-lived latch (InnoDB's page hash), so each shard's pool mutex
// protects only LRU maintenance, eviction, and page I/O — including the
// write-back of a dirty victim while holding the mutex, the
// single-page-flush pathology the MySQL community later fixed with
// multi-threaded LRU flushing (paper Section 4.8).
//
// Statistics are per-shard relaxed atomics aggregated at read time: the
// stats lock that used to sit on the hit path is gone, so it can no longer
// surface as a contention factor of its own at high thread counts.
#ifndef SRC_MINIDB_BUFFER_POOL_H_
#define SRC_MINIDB_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/minidb/config.h"
#include "src/simio/disk.h"
#include "src/vprof/sync.h"

namespace minidb {

using PageId = uint64_t;

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t clean_evictions = 0;
  uint64_t dirty_evictions = 0;
  uint64_t lru_moves = 0;
  uint64_t lru_moves_skipped = 0;  // LLU deferrals
  uint64_t mutex_waits = 0;        // contended pool-mutex acquisitions
  uint64_t mutex_wait_ns = 0;      // time spent waiting for the pool mutex
};

class BufferPool {
 public:
  // `instances` pool shards share `capacity_pages` frames (split evenly,
  // remainder to the low shards). instances=1 reproduces the single global
  // buf_pool->mutex of the paper's case study exactly.
  BufferPool(int capacity_pages, BufferPolicy policy, int llu_try_iterations,
             simio::Disk* disk, int instances = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins the page for an access (buf_page_get). Blocks for simulated I/O on
  // a miss; marks the frame dirty when for_write is true.
  void GetPage(PageId page_id, bool for_write);

  // Grows or shrinks the pool online (buf_pool_resize): per-shard capacities
  // are recomputed and over-full shards evict down under their pool mutex.
  // Concurrent GetPage traffic is safe throughout.
  void Resize(int capacity_pages);

  BufferPoolStats stats() const;               // aggregated over shards
  BufferPoolStats shard_stats(int shard) const;
  size_t resident_pages() const;
  int capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  int instances() const { return static_cast<int>(shards_.size()); }

  // Shard a page id maps to (exposed for tests and gauges).
  int ShardOf(PageId page_id) const;

  // Invariant check for tests, per shard: LRU size == hash size <= shard
  // capacity, no duplicate page ids, every page hashed to this shard.
  bool CheckInvariants() const;

 private:
  struct Frame {
    PageId page_id = 0;
    bool dirty = false;
    bool deferred_move = false;
    std::list<PageId>::iterator lru_pos;
  };

  // One pool instance. Each counter is a relaxed atomic so the hot path
  // never takes a stats lock; aggregation happens in stats().
  struct Shard {
    mutable std::mutex hash_mu;  // the page-hash latch (short critical sections)
    std::unordered_map<PageId, Frame> frames;

    vprof::Mutex pool_mu;        // this instance's buffer-pool mutex
    std::list<PageId> lru;       // front = most recently used
    std::atomic<int> capacity{0};

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> clean_evictions{0};
    std::atomic<uint64_t> dirty_evictions{0};
    std::atomic<uint64_t> lru_moves{0};
    std::atomic<uint64_t> lru_moves_skipped{0};
    std::atomic<uint64_t> mutex_waits{0};
    std::atomic<uint64_t> mutex_wait_ns{0};
  };

  // Instrumented acquisition of a shard's pool mutex (blocking variant).
  // Contended waits are counted (and timed) into the shard's counters.
  void PoolMutexEnter(Shard& shard);
  // Spin-lock variant: burns CPU instead of sleeping, still instrumented.
  void PoolMutexSpinEnter(Shard& shard);
  // LLU variant: bounded try; returns false if the move should be skipped.
  bool PoolMutexTryEnterBounded(Shard& shard);

  // Precondition for both: shard.pool_mu held.
  void HandleMiss(Shard& shard, PageId page_id, bool for_write);
  void EvictToCapacity(Shard& shard);
  void TouchLru(Shard& shard, Frame& frame);

  static BufferPoolStats ReadCounters(const Shard& shard);

  const BufferPolicy policy_;
  const int llu_try_iterations_;
  simio::Disk* disk_;
  std::atomic<int> capacity_;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_BUFFER_POOL_H_
