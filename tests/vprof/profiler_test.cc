// End-to-end test of the iterative refinement driver (Algorithm 3) against a
// small synthetic application with a known variance culprit.
#include "src/vprof/analysis/profiler.h"

#include <gtest/gtest.h>

#include "src/simio/disk.h"
#include "src/statkit/rng.h"
#include "src/vprof/probe.h"

namespace vprof {
namespace {

// Synthetic app: handle_request -> {parse, execute}; execute -> {lookup,
// noisy_io}. noisy_io alternates between fast and slow and is the intended
// culprit.
statkit::Rng g_rng(17);

void Parse() {
  VPROF_FUNC("syn_parse");
  simio::SleepUs(100);
}

void Lookup() {
  VPROF_FUNC("syn_lookup");
  simio::SleepUs(100);
}

void NoisyIo() {
  VPROF_FUNC("syn_noisy_io");
  simio::SleepUs(g_rng.NextBool(0.3) ? 2500.0 : 100.0);
}

void Execute() {
  VPROF_FUNC("syn_execute");
  Lookup();
  NoisyIo();
}

void HandleRequest() {
  VPROF_FUNC("syn_handle_request");
  const IntervalId sid = BeginInterval();
  Parse();
  Execute();
  EndInterval(sid);
}

CallGraph BuildGraph() {
  CallGraph graph;
  graph.AddEdge("syn_handle_request", "syn_parse");
  graph.AddEdge("syn_handle_request", "syn_execute");
  graph.AddEdge("syn_execute", "syn_lookup");
  graph.AddEdge("syn_execute", "syn_noisy_io");
  return graph;
}

TEST(ProfilerTest, FindsTheNoisyLeaf) {
  const CallGraph graph = BuildGraph();
  Profiler profiler("syn_handle_request", &graph, [] {
    for (int i = 0; i < 120; ++i) {
      HandleRequest();
    }
  });
  ProfileOptions options;
  options.top_k = 3;
  options.min_contribution = 0.05;
  const ProfileResult result = profiler.Run(options);

  ASSERT_FALSE(result.factors.empty());
  EXPECT_EQ(result.factors[0].Label(result.function_names), "syn_noisy_io");
  EXPECT_GT(result.factors[0].contribution, 0.5);
  // Refinement needed at least two runs: root level, then execute's children.
  EXPECT_GE(result.runs, 2);
  // The final instrumented set must include the culprit.
  bool instrumented_noisy = false;
  for (const auto& name : result.instrumented) {
    instrumented_noisy |= (name == "syn_noisy_io");
  }
  EXPECT_TRUE(instrumented_noisy);
}

TEST(ProfilerTest, ReportMentionsTopFactor) {
  const CallGraph graph = BuildGraph();
  Profiler profiler("syn_handle_request", &graph, [] {
    for (int i = 0; i < 60; ++i) {
      HandleRequest();
    }
  });
  const ProfileResult result = profiler.Run();
  const std::string report = result.Report();
  EXPECT_NE(report.find("syn_noisy_io"), std::string::npos);
  EXPECT_NE(report.find("overall"), std::string::npos);
}

TEST(ProfilerTest, ShouldExpandVetoStopsRefinement) {
  const CallGraph graph = BuildGraph();
  Profiler profiler("syn_handle_request", &graph, [] {
    for (int i = 0; i < 40; ++i) {
      HandleRequest();
    }
  });
  ProfileOptions options;
  options.should_expand = [](const Factor&) { return false; };
  const ProfileResult result = profiler.Run(options);
  EXPECT_EQ(result.runs, 1);  // no factor approved for break-down
  // Only root-level functions were instrumented.
  for (const auto& name : result.instrumented) {
    EXPECT_NE(name, "syn_lookup");
    EXPECT_NE(name, "syn_noisy_io");
  }
}

TEST(ProfilerTest, StatsPopulated) {
  const CallGraph graph = BuildGraph();
  Profiler profiler("syn_handle_request", &graph, [] {
    for (int i = 0; i < 50; ++i) {
      HandleRequest();
    }
  });
  const ProfileResult result = profiler.Run();
  EXPECT_EQ(result.latencies_ns.size(), 50u);
  EXPECT_GT(result.overall_mean_ns, 0.0);
  EXPECT_GT(result.overall_variance, 0.0);
  EXPECT_GE(result.tree_height, 2);
  EXPECT_GT(result.tree_breadth, 0u);
  ASSERT_NE(result.analysis, nullptr);
  EXPECT_EQ(result.analysis->interval_count(), 50u);
}

}  // namespace
}  // namespace vprof
