#include "src/vprof/analysis/variance_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

// Builds n single-thread intervals, each spanned by one invocation of `txn`
// with children `a` (constant 100ns) and `b` (duration supplied per interval).
// Layout of interval i (base = i * 10000):
//   txn: [base, base + 100 + b_i + 50]
//     a: [base, base + 100]
//     b: [base + 100, base + 100 + b_i]
//   trailing 50ns is txn body.
Trace BuildTwoChildTrace(const std::vector<TimeNs>& b_durations) {
  TraceBuilder tb;
  for (size_t i = 0; i < b_durations.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 10000;
    const TimeNs b_end = base + 100 + b_durations[i];
    const TimeNs end = b_end + 50;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, end);
    const int txn = tb.Invoke(0, "txn", base, end, -1, sid);
    tb.Invoke(0, "a", base, base + 100, txn, sid);
    tb.Invoke(0, "b", base + 100, b_end, txn, sid);
  }
  return tb.Build();
}

NodeId FindNode(const VarianceAnalysis& va, const std::string& label) {
  for (size_t i = 0; i < va.node_count(); ++i) {
    if (va.NodeLabel(static_cast<NodeId>(i)) == label) {
      return static_cast<NodeId>(i);
    }
  }
  return -1;
}

TEST(VarianceAnalysisTest, ConstantChildHasZeroVariance) {
  const Trace trace = BuildTwoChildTrace({500, 1000, 1500, 2000});
  VarianceAnalysis va(trace);
  const NodeId a = FindNode(va, "a");
  ASSERT_GE(a, 0);
  EXPECT_DOUBLE_EQ(va.NodeVariance(a), 0.0);
  EXPECT_DOUBLE_EQ(va.NodeMean(a), 100.0);
}

TEST(VarianceAnalysisTest, VaryingChildCarriesAllVariance) {
  const Trace trace = BuildTwoChildTrace({500, 1000, 1500, 2000});
  VarianceAnalysis va(trace);
  const NodeId b = FindNode(va, "b");
  ASSERT_GE(b, 0);
  // b values: 500,1000,1500,2000 -> population variance 312500.
  EXPECT_NEAR(va.NodeVariance(b), 312500.0, 1e-6);
  // Latency = 150 + b, so overall variance equals b's variance.
  EXPECT_NEAR(va.overall_variance(), 312500.0, 1e-6);
  EXPECT_NEAR(va.NodeContribution(b), 1.0, 1e-9);
}

TEST(VarianceAnalysisTest, BodyNodeIsResidual) {
  const Trace trace = BuildTwoChildTrace({500, 1000});
  VarianceAnalysis va(trace);
  const NodeId body = FindNode(va, "txn(body)");
  ASSERT_GE(body, 0);
  EXPECT_NEAR(va.NodeMean(body), 50.0, 1e-9);
  EXPECT_NEAR(va.NodeVariance(body), 0.0, 1e-9);
}

TEST(VarianceAnalysisTest, EquationTwoDecomposition) {
  // Var(txn) must equal the sum of child variances plus twice the pairwise
  // covariances of {a, b, body}.
  const Trace trace = BuildTwoChildTrace({100, 900, 400, 1600, 250});
  VarianceAnalysis va(trace);
  const NodeId txn = FindNode(va, "txn");
  ASSERT_GE(txn, 0);
  const auto& children = va.node(txn).children;
  ASSERT_EQ(children.size(), 3u);  // a, b, txn(body)
  double sum = 0.0;
  for (NodeId c : children) {
    sum += va.NodeVariance(c);
  }
  for (const SiblingCovariance& cov : va.covariances()) {
    if (cov.parent == txn) {
      sum += 2.0 * cov.covariance;
    }
  }
  EXPECT_NEAR(va.NodeVariance(txn), sum, 1e-6 * (1.0 + sum));
}

TEST(VarianceAnalysisTest, TreeStructure) {
  const Trace trace = BuildTwoChildTrace({500, 600});
  VarianceAnalysis va(trace);
  const NodeId txn = FindNode(va, "txn");
  const NodeId a = FindNode(va, "a");
  ASSERT_GE(txn, 0);
  ASSERT_GE(a, 0);
  EXPECT_EQ(va.node(a).parent, txn);
  EXPECT_EQ(va.node(txn).parent, kRootNode);
  EXPECT_EQ(va.node(txn).depth, 1);
  EXPECT_EQ(va.node(a).depth, 2);
  EXPECT_EQ(va.TreeHeight(), 2);  // deepest: a, b, txn(body) at depth 2
}

TEST(VarianceAnalysisTest, RecursiveCallsGetDistinctNodes) {
  // f -> f (recursion): the inner call is a distinct tree position.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 1000);
  const int outer = tb.Invoke(0, "f", 0, 1000, -1, 1);
  tb.Invoke(0, "f", 200, 700, outer, 1);
  const Trace trace = tb.Build();
  VarianceAnalysis va(trace);
  int f_nodes = 0;
  for (size_t i = 0; i < va.node_count(); ++i) {
    if (va.NodeLabel(static_cast<NodeId>(i)) == "f") {
      ++f_nodes;
    }
  }
  EXPECT_EQ(f_nodes, 2);
}

TEST(VarianceAnalysisTest, SameFunctionTwoCallSitesAggregatesPerInterval) {
  // Two invocations of `g` under txn in one interval: the node's per-interval
  // time is their sum.
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 1000);
  const int txn = tb.Invoke(0, "txn", 0, 1000, -1, 1);
  tb.Invoke(0, "g", 0, 300, txn, 1);
  tb.Invoke(0, "g", 500, 800, txn, 1);
  const Trace trace = tb.Build();
  VarianceAnalysis va(trace);
  const NodeId g = FindNode(va, "g");
  ASSERT_GE(g, 0);
  EXPECT_DOUBLE_EQ(va.NodeMean(g), 600.0);
}

TEST(VarianceAnalysisTest, OverallMeanMatchesLatencies) {
  const Trace trace = BuildTwoChildTrace({500, 1000, 1500});
  VarianceAnalysis va(trace);
  // Latencies: 650, 1150, 1650.
  EXPECT_NEAR(va.overall_mean(), 1150.0, 1e-9);
  ASSERT_EQ(va.latencies().size(), 3u);
  EXPECT_DOUBLE_EQ(va.latencies()[0], 650.0);
}

TEST(VarianceAnalysisTest, WaitTimeLandsInRootBody) {
  // A blocked span with no waker inside the interval: no function covers it,
  // so it shows up in the synthetic root's body "(other)".
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 400).Blocked(0, 1, 400, 900).Exec(0, 1, 900, 1000);
  tb.Invoke(0, "work", 0, 400, -1, 1);
  const Trace trace = tb.Build();
  VarianceAnalysis va(trace);
  const NodeId other = FindNode(va, "(other)");
  ASSERT_GE(other, 0);
  // Latency 1000, work 400 -> other 600 (blocked 500 + trailing 100).
  EXPECT_DOUBLE_EQ(va.NodeMean(other), 600.0);
  EXPECT_DOUBLE_EQ(va.total_blocked_wait_ns(), 500.0);
}

TEST(VarianceAnalysisTest, BreadthIsSquaredWidestFanout) {
  const Trace trace = BuildTwoChildTrace({500, 600});
  VarianceAnalysis va(trace);
  // txn has children {a, b, body} -> breadth 9.
  EXPECT_EQ(va.TreeBreadth(), 9u);
}

}  // namespace
}  // namespace vprof
