file(REMOVE_RECURSE
  "CMakeFiles/statkit_welford_test.dir/welford_test.cc.o"
  "CMakeFiles/statkit_welford_test.dir/welford_test.cc.o.d"
  "statkit_welford_test"
  "statkit_welford_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_welford_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
