#include "src/httpd/bucket_alloc.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "src/simio/disk.h"
#include "src/vprof/probe.h"

namespace httpd {

GlobalFreeList::GlobalFreeList(int initial_blocks, bool bulk)
    : free_blocks_(initial_blocks),
      bulk_blocks_(bulk ? 64 : 4),
      cap_blocks_(bulk ? initial_blocks * 8 : initial_blocks) {}

namespace {
std::atomic<int> g_pressure_override{-1};
}  // namespace

void GlobalFreeList::SetPressureOverrideForTesting(int override_value) {
  g_pressure_override.store(override_value, std::memory_order_relaxed);
}

bool GlobalFreeList::PressuredNow() {
  const int forced = g_pressure_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return forced != 0;
  }
  // Time-windowed memory pressure (kernel reclaim/compaction phases): ~25%
  // of 5ms windows, selected by a hash of the window index.
  const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  const uint64_t window = static_cast<uint64_t>(now_us) / 5000;
  return ((window * 2654435761ull) >> 13) % 4 == 0;
}

void GlobalFreeList::SystemAlloc(bool pressured) {
  // Simulated mmap + page faulting.
  ++system_allocs_;
  ++alloc_sequence_;
  const double cost_us =
      pressured ? 90.0 + static_cast<double>(alloc_sequence_ % 5) * 40.0
                : 10.0 + static_cast<double>(alloc_sequence_ % 3) * 4.0;
  simio::SleepUs(cost_us);
  free_blocks_ += bulk_blocks_;
}

int GlobalFreeList::Take(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (PressuredNow()) {
    // Under memory pressure the retained free list has been reclaimed by the
    // OS: every trip to the global allocator pays the system-allocation
    // cost. Because all of a request's allocation sites share this state,
    // they slow down *together* — the shared root cause behind the positive
    // function covariances of paper Table 7.
    SystemAlloc(/*pressured=*/true);
  } else if (free_blocks_ < count) {
    SystemAlloc(/*pressured=*/false);
  }
  const int granted = std::min(count, free_blocks_);
  free_blocks_ -= granted;
  return granted;
}

void GlobalFreeList::Give(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  // Blocks above the retention cap are "returned to the OS" (APR's
  // apr_allocator max_free_index behaviour), so pressure recurs.
  free_blocks_ = std::min(free_blocks_ + count, cap_blocks_);
}

int GlobalFreeList::free_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_blocks_;
}

uint64_t GlobalFreeList::system_allocs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return system_allocs_;
}

BucketAllocator::BucketAllocator(GlobalFreeList* global, bool bulk)
    : global_(global),
      refill_count_(bulk ? 16 : 1),
      surplus_limit_(bulk ? 32 : 4) {}

BucketAllocator::~BucketAllocator() {
  if (local_free_ > 0) {
    global_->Give(local_free_);
  }
}

void BucketAllocator::Alloc() {
  VPROF_FUNC("apr_bucket_alloc");
  if (local_free_ > 0) {
    --local_free_;
    ++outstanding_;
    ++stats_.local_hits;
    return;
  }
  // Local cache exhausted: instrumented trip to the global allocator.
  {
    VPROF_FUNC("apr_allocator_alloc");
    const uint64_t before = global_->system_allocs();
    const int granted = global_->Take(refill_count_);
    local_free_ += granted;
    ++stats_.global_refills;
    if (global_->system_allocs() != before) {
      ++stats_.system_allocs;
    }
  }
  if (local_free_ > 0) {
    --local_free_;
  }
  ++outstanding_;
}

void BucketAllocator::Free() {
  if (outstanding_ > 0) {
    --outstanding_;
  }
  ++local_free_;
  if (local_free_ > surplus_limit_) {
    const int surplus = local_free_ - surplus_limit_ / 2;
    global_->Give(surplus);
    local_free_ -= surplus;
  }
}

}  // namespace httpd
