#!/usr/bin/env bash
# Sweep runner for the multi-core scale-out benchmark (bench/scale.cc).
# Builds the `scale` target, runs it --runs times, and merges the runs into
# one BENCH_scale.json at the repo root. The merge is deterministic: for
# every (config, threads) point the run with the median throughput is
# selected (ties broken by run index), speedups and the acceptance verdict
# are recomputed from the merged points, and factor migrations are re-derived
# from the merged top-factor sequences — so repeated invocations over the
# same run set always produce byte-identical output.
# Usage: scripts/bench_scale.sh [--runs N] [--out FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS=1
OUT="BENCH_scale.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --runs) RUNS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "usage: $0 [--runs N] [--out FILE]" >&2; exit 2 ;;
  esac
done

echo "== build: bench/scale =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target scale

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

STATUS=0
for ((i = 1; i <= RUNS; i++)); do
  echo "== run ${i}/${RUNS} =="
  RUN_DIR="${WORK}/run${i}"
  mkdir -p "${RUN_DIR}"
  # The binary exits non-zero when the acceptance ratio is missed; record
  # the worst status but still merge, so a flaky point doesn't hide data.
  (cd "${RUN_DIR}" && "${OLDPWD}/build/bench/scale") || STATUS=$?
done

if [[ "${RUNS}" == "1" ]]; then
  cp "${WORK}/run1/BENCH_scale.json" "${OUT}"
else
  python3 - "${OUT}" "${WORK}"/run*/BENCH_scale.json <<'PY'
import json, statistics, sys

out_path, *paths = sys.argv[1:]
runs = [json.load(open(p)) for p in sorted(paths)]
merged = {k: runs[0][k] for k in ("benchmark", "warehouses", "thread_counts")}
merged["runs_merged"] = len(runs)
merged["configs"] = {}

for name, first in runs[0]["configs"].items():
    points = []
    for idx in range(len(first["points"])):
        candidates = [r["configs"][name]["points"][idx] for r in runs]
        med = statistics.median_low(sorted(p["throughput_tps"] for p in candidates))
        # First run whose point carries the median throughput (deterministic).
        points.append(next(p for p in candidates if p["throughput_tps"] == med))
    cfg = {k: first[k] for k in
           ("buffer_pool_instances", "commit_mode", "partition_by_warehouse")}
    cfg["points"] = points
    cfg["speedup_8t_over_1t"] = round(
        points[3]["throughput_tps"] / points[0]["throughput_tps"], 3)
    merged["configs"][name] = cfg

migrations = []
for name, cfg in merged["configs"].items():
    pts = cfg["points"]
    for prev, cur in zip(pts, pts[1:]):
        if prev["top_factors"] and cur["top_factors"] and \
           prev["top_factors"][0]["name"] != cur["top_factors"][0]["name"]:
            migrations.append({"config": name, "at_threads": cur["threads"],
                               "from": prev["top_factors"][0]["name"],
                               "to": cur["top_factors"][0]["name"]})
merged["factor_migrations"] = migrations

after = merged["configs"]["after"]["speedup_8t_over_1t"]
merged["acceptance"] = {"after_8t_over_1t": after, "required": 2.5,
                        "pass": after >= 2.5}
json.dump(merged, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
PY
fi

echo "== wrote ${OUT} =="
python3 -c "
import json
d = json.load(open('${OUT}'))
a = d['acceptance']
print('after 8T/1T speedup: %.2fx (required %.1fx) -> %s' %
      (a['after_8t_over_1t'], a['required'], 'PASS' if a['pass'] else 'FAIL'))
" 2>/dev/null || true
exit "${STATUS}"
