// Open-loop load generator for the network front-end.
//
// A closed-loop driver (ab.h) can never push a server past saturation: every
// stalled request stalls its generator, so offered load collapses to service
// rate exactly when the latency tail is most interesting. The open-loop
// driver decouples the two — arrivals follow a pre-generated stochastic
// schedule (Poisson or bursty MMPP) and are written on their scheduled tick
// whether or not earlier requests completed, so queueing delay shows up in
// the measured distribution instead of silently throttling the workload
// (the paper measures production-shaped latency variance; open-loop arrivals
// are what make overload reachable at all).
//
// Latency is measured from the SCHEDULED arrival to the reply, not from the
// actual write(2) — the coordinated-omission-free number.
//
// Accounting is exact by construction and asserted by the statistical
// self-test: sent == acked + rejected + failed + in_flight at every drain.
#ifndef SRC_WORKLOAD_OPENLOOP_H_
#define SRC_WORKLOAD_OPENLOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/protocol.h"

namespace workload {

enum class ArrivalProcess {
  kPoisson,  // exponential inter-arrivals, CV = 1
  kBursty,   // 2-state Markov-modulated Poisson (calm/burst), CV > 1
};

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double rate_per_sec = 1000.0;  // long-run mean arrival rate

  // kBursty shape: the burst state fires at `burst_rate_multiplier` times
  // the calm state's rate and occupies `burst_time_fraction` of wall time
  // (mean dwell in burst = burst_dwell_ms; calm dwell follows from the
  // fraction). The long-run mean stays rate_per_sec.
  double burst_rate_multiplier = 8.0;
  double burst_time_fraction = 0.1;
  double burst_dwell_ms = 20.0;
};

// The arrival schedule itself, exposed so the statistical self-test can
// check CV ≈ 1 (Poisson) and CV > 1 (bursty) without sockets. Deterministic
// in `seed`.
std::vector<int64_t> GenerateInterArrivalsNs(const ArrivalConfig& config,
                                             size_t count, uint64_t seed);

// Mean and coefficient of variation of a sample (diagnostics/self-test).
double MeanNs(const std::vector<int64_t>& samples);
double CoefficientOfVariation(const std::vector<int64_t>& samples);

struct OpenLoopOptions {
  uint16_t port = 0;
  size_t connections = 64;    // arrivals round-robin across these
  size_t total_requests = 0;  // schedule length (0 derives from duration)
  double duration_s = 1.0;    // used when total_requests == 0
  ArrivalConfig arrivals;
  uint64_t seed = 42;

  // Builds the i-th request frame (request_id is assigned by the driver).
  std::function<net::Frame(uint64_t index)> make_request;

  // How long to wait for in-flight replies after the last send.
  int drain_timeout_ms = 5000;
};

struct OpenLoopResult {
  // Exact at drain: sent == acked + rejected + failed + in_flight.
  uint64_t sent = 0;      // requests written to a socket
  uint64_t acked = 0;     // kTxnReply / kHttpReply / kPong received
  uint64_t rejected = 0;  // kRejected (503) received
  uint64_t failed = 0;    // connection died / kError before a reply
  uint64_t in_flight = 0; // never answered within the drain timeout

  std::vector<int64_t> latencies_ns;          // acked only, scheduled->reply
  std::vector<int64_t> realized_interarrival_ns;  // actual send spacing
  double duration_s = 0.0;   // first scheduled send -> last reply (or drain)
  double offered_per_s = 0.0;   // schedule rate
  double achieved_per_s = 0.0;  // acked / duration

  bool connect_failed = false;  // setup never completed; counters are zero
};

// Percentile over an unsorted sample (p in [0,100]); 0 on empty input.
int64_t PercentileNs(std::vector<int64_t> samples, double p);

// Runs the schedule against a NetServer on 127.0.0.1:port. Single-threaded:
// one epoll manages all connections; sends happen on their scheduled tick
// (batched at millisecond granularity), replies are matched by request_id.
OpenLoopResult RunOpenLoop(const OpenLoopOptions& options);

}  // namespace workload

#endif  // SRC_WORKLOAD_OPENLOOP_H_
