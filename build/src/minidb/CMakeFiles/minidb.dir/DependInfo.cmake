
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minidb/btree.cc" "src/minidb/CMakeFiles/minidb.dir/btree.cc.o" "gcc" "src/minidb/CMakeFiles/minidb.dir/btree.cc.o.d"
  "/root/repo/src/minidb/buffer_pool.cc" "src/minidb/CMakeFiles/minidb.dir/buffer_pool.cc.o" "gcc" "src/minidb/CMakeFiles/minidb.dir/buffer_pool.cc.o.d"
  "/root/repo/src/minidb/engine.cc" "src/minidb/CMakeFiles/minidb.dir/engine.cc.o" "gcc" "src/minidb/CMakeFiles/minidb.dir/engine.cc.o.d"
  "/root/repo/src/minidb/lock_manager.cc" "src/minidb/CMakeFiles/minidb.dir/lock_manager.cc.o" "gcc" "src/minidb/CMakeFiles/minidb.dir/lock_manager.cc.o.d"
  "/root/repo/src/minidb/redo_log.cc" "src/minidb/CMakeFiles/minidb.dir/redo_log.cc.o" "gcc" "src/minidb/CMakeFiles/minidb.dir/redo_log.cc.o.d"
  "/root/repo/src/minidb/table.cc" "src/minidb/CMakeFiles/minidb.dir/table.cc.o" "gcc" "src/minidb/CMakeFiles/minidb.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vprof/CMakeFiles/vprof.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/simio.dir/DependInfo.cmake"
  "/root/repo/build/src/statkit/CMakeFiles/statkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
