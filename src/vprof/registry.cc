#include "src/vprof/registry.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace vprof {

std::atomic<uint8_t> g_func_enabled[kMaxFunctions];

namespace {

struct RegistryState {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, FuncId> by_name;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

FuncId RegisterFunction(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.by_name.find(std::string(name));
  if (it != state.by_name.end()) {
    return it->second;
  }
  if (state.names.size() >= kMaxFunctions) {
    std::fprintf(stderr, "vprof: function registry overflow (%zu)\n",
                 state.names.size());
    std::abort();
  }
  const FuncId id = static_cast<FuncId>(state.names.size());
  state.names.emplace_back(name);
  state.by_name.emplace(std::string(name), id);
  return id;
}

FuncId LookupFunction(std::string_view name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.by_name.find(std::string(name));
  return it == state.by_name.end() ? kInvalidFunc : it->second;
}

std::string FunctionName(FuncId id) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (id >= state.names.size()) {
    return std::string();
  }
  return state.names[id];
}

size_t RegisteredFunctionCount() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.names.size();
}

std::vector<std::string> AllFunctionNames() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.names;
}

void SetFunctionEnabled(FuncId id, bool enabled) {
  if (id < kMaxFunctions) {
    g_func_enabled[id].store(enabled ? 1 : 0, std::memory_order_relaxed);
  }
}

void DisableAllFunctions() {
  const size_t n = RegisteredFunctionCount();
  for (size_t i = 0; i < n; ++i) {
    g_func_enabled[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<FuncId> EnabledFunctions() {
  std::vector<FuncId> out;
  const size_t n = RegisteredFunctionCount();
  for (size_t i = 0; i < n; ++i) {
    if (g_func_enabled[i].load(std::memory_order_relaxed) != 0) {
      out.push_back(static_cast<FuncId>(i));
    }
  }
  return out;
}

}  // namespace vprof
