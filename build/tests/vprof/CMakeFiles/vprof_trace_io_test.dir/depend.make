# Empty dependencies file for vprof_trace_io_test.
# This may be replaced when dependencies are built.
