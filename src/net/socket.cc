#include "src/net/socket.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/fault/failpoint.h"

namespace net {

void Fd::reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

int SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return -1;
  }
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

Fd ListenLocal(uint16_t port, int backlog, uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Fd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Fd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Fd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  if (SetNonBlocking(fd.get()) != 0) {
    return Fd();
  }
  return fd;
}

Fd ConnectLocal(uint16_t port, bool nonblocking) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Fd();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Fd();
  }
  // Request/reply frames are tiny; Nagle only adds latency on loopback.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (nonblocking && SetNonBlocking(fd.get()) != 0) {
    return Fd();
  }
  return fd;
}

ssize_t ReadFd(int fd, void* buf, size_t n, bool* injected_eof) {
  if (injected_eof != nullptr) {
    *injected_eof = false;
  }
  if (fault::Triggered("net/read_eof")) {
    if (injected_eof != nullptr) {
      *injected_eof = true;
    }
    return 0;
  }
  return ::read(fd, buf, n);
}

ssize_t WriteFd(int fd, const void* buf, size_t n) {
  if (fault::Triggered("net/slow_peer")) {
    errno = EAGAIN;
    return -1;
  }
  uint64_t cap = fault::Trigger::kNoValue;
  if (fault::TriggeredValue("net/short_write", &cap)) {
    const size_t limit = cap == fault::Trigger::kNoValue
                             ? 1
                             : static_cast<size_t>(std::max<uint64_t>(cap, 1));
    n = std::min(n, limit);
  }
  // MSG_NOSIGNAL: a peer that slammed the connection shut must surface as
  // EPIPE from the call, not as a process-wide SIGPIPE.
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  int count = 0;
  while (::readdir(dir) != nullptr) {
    ++count;
  }
  ::closedir(dir);
  // Subtract ".", ".." and the directory's own fd.
  return count - 3;
}

}  // namespace net
