// NetServer end-to-end over real loopback sockets: request/reply for all
// three engine adapters, pipelining with out-of-order reply matching,
// dispatch-queue shedding (503), protocol-violation handling, and idle
// eviction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/httpd/server.h"
#include "src/minidb/engine.h"
#include "src/minipg/engine.h"
#include "src/net/client.h"
#include "src/net/frontend.h"
#include "src/net/server.h"

namespace net {
namespace {

using namespace std::chrono_literals;

Frame TxnRequestFrame(uint64_t request_id) {
  Frame frame;
  frame.type = MsgType::kTxn;
  frame.request_id = request_id;
  frame.txn.type = minidb::TxnType::kPayment;
  frame.txn.warehouse = 0;
  frame.txn.district = 0;
  frame.txn.customer = 1;
  return frame;
}

TEST(NetServerTest, MinidbExecutesTransactionsOverTheWire) {
  minidb::Engine engine(minidb::EngineConfig::MemoryResident());
  NetServer server(NetServerOptions{}, MakeMinidbHandler(&engine));
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.port(), 0);

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  for (uint64_t id = 1; id <= 5; ++id) {
    Frame reply;
    ASSERT_TRUE(client.Call(TxnRequestFrame(id), &reply));
    EXPECT_EQ(reply.type, MsgType::kTxnReply);
    EXPECT_EQ(reply.request_id, id);
    EXPECT_EQ(reply.status, 0) << "payment should commit";
  }
  client.Close();
  server.Shutdown();

  const NetServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.dispatched, 5u);
  EXPECT_EQ(stats.replies_sent, 5u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServerTest, MinipgAndHttpdAdaptersAnswer) {
  {
    minipg::PgEngine engine(minipg::PgConfig{});
    NetServer server(NetServerOptions{}, MakeMinipgHandler(&engine));
    ASSERT_TRUE(server.Start());
    BlockingClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    Frame reply;
    ASSERT_TRUE(client.Call(TxnRequestFrame(1), &reply));
    EXPECT_EQ(reply.type, MsgType::kTxnReply);
    client.Close();
    server.Shutdown();
  }
  {
    httpd::HttpdConfig config;
    config.workers = 2;
    httpd::HttpServer http(config);
    NetServer server(NetServerOptions{}, MakeHttpdHandler(&http));
    ASSERT_TRUE(server.Start());
    BlockingClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    Frame request;
    request.type = MsgType::kHttpGet;
    request.request_id = 9;
    request.file_id = 1;
    Frame reply;
    ASSERT_TRUE(client.Call(request, &reply));
    EXPECT_EQ(reply.type, MsgType::kHttpReply);
    EXPECT_EQ(reply.request_id, 9u);
    client.Close();
    server.Shutdown();
    http.Shutdown();
  }
}

TEST(NetServerTest, PingPongAndPipelinedRepliesMatchByRequestId) {
  // A deliberately slow, parallel handler so pipelined replies can return
  // out of order; the request_id echo is what keeps clients sane.
  NetServerOptions options;
  options.workers = 4;
  NetServer server(options, [](const Frame& request) {
    if (request.request_id % 2 == 1) {
      std::this_thread::sleep_for(20ms);
    }
    Frame reply;
    reply.type = MsgType::kTxnReply;
    reply.value = request.request_id * 100;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  Frame ping;
  ping.type = MsgType::kPing;
  ping.request_id = 42;
  Frame pong;
  ASSERT_TRUE(client.Call(ping, &pong));
  EXPECT_EQ(pong.type, MsgType::kPong);
  EXPECT_EQ(pong.request_id, 42u);

  constexpr uint64_t kPipelined = 8;
  for (uint64_t id = 1; id <= kPipelined; ++id) {
    Frame request = TxnRequestFrame(id);
    ASSERT_TRUE(client.Send(request));
  }
  std::vector<bool> seen(kPipelined + 1, false);
  for (uint64_t i = 0; i < kPipelined; ++i) {
    Frame reply;
    ASSERT_TRUE(client.Recv(&reply));
    ASSERT_GE(reply.request_id, 1u);
    ASSERT_LE(reply.request_id, kPipelined);
    EXPECT_FALSE(seen[reply.request_id]) << "duplicate reply";
    seen[reply.request_id] = true;
    EXPECT_EQ(reply.value, reply.request_id * 100);
  }
  client.Close();
  server.Shutdown();
}

TEST(NetServerTest, ShedsWithRejectedWhenDispatchQueueIsFull) {
  std::atomic<bool> release{false};
  NetServerOptions options;
  options.workers = 1;
  options.max_dispatch_depth = 2;
  NetServer server(options, [&release](const Frame&) {
    while (!release.load()) {
      std::this_thread::sleep_for(1ms);
    }
    Frame reply;
    reply.type = MsgType::kTxnReply;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // 1 in the worker + 2 queued; everything beyond must shed.
  constexpr uint64_t kBurst = 10;
  for (uint64_t id = 1; id <= kBurst; ++id) {
    ASSERT_TRUE(client.Send(TxnRequestFrame(id)));
  }
  uint64_t rejected = 0;
  // Rejections come back immediately, before the worker is released.
  Frame reply;
  while (client.Recv(&reply, 500)) {
    if (reply.type == MsgType::kRejected) {
      ++rejected;
    }
    if (rejected >= kBurst - 3) {
      break;
    }
  }
  EXPECT_GE(rejected, kBurst - 3);
  release.store(true);
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.stats().rejected + server.stats().replies_sent +
                server.stats().replies_dropped,
            kBurst);
}

TEST(NetServerTest, ProtocolViolationGetsTypedErrorThenClose) {
  minidb::Engine engine(minidb::EngineConfig::MemoryResident());
  NetServer server(NetServerOptions{}, MakeMinidbHandler(&engine));
  ASSERT_TRUE(server.Start());

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // A frame with an unknown type byte.
  const char garbage[] = {9, 0, 0, 0, 77, 1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(client.SendRaw(garbage, sizeof(garbage)));
  Frame reply;
  ASSERT_TRUE(client.Recv(&reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.error, static_cast<uint8_t>(WireError::kBadType));
  // The server closes after flushing the error: next recv sees EOF.
  EXPECT_FALSE(client.Recv(&reply, 2000));
  client.Close();

  // Reply types sent to the server are violations too, even though they
  // decode cleanly.
  BlockingClient second;
  ASSERT_TRUE(second.Connect(server.port()));
  Frame pong;
  pong.type = MsgType::kPong;
  pong.request_id = 1;
  ASSERT_TRUE(second.Send(pong));
  ASSERT_TRUE(second.Recv(&reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  second.Close();
  server.Shutdown();
  EXPECT_GE(server.stats().protocol_errors, 2u);
}

TEST(NetServerTest, IdleConnectionsAreSweptOut) {
  NetServerOptions options;
  options.idle_timeout_ms = 80;
  options.sweep_interval_ms = 10;
  NetServer server(options, [](const Frame&) {
    Frame reply;
    reply.type = MsgType::kTxnReply;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  Frame reply;
  ASSERT_TRUE(client.Call(TxnRequestFrame(1), &reply));

  // Go quiet past the timeout: the sweep must evict us (EOF on read).
  Frame never;
  EXPECT_FALSE(client.Recv(&never, 2000));
  client.Close();
  server.Shutdown();
  EXPECT_GE(server.stats().idle_evictions, 1u);
}

TEST(NetServerTest, ShutdownIsIdempotentAndDrainsInFlight) {
  minidb::Engine engine(minidb::EngineConfig::MemoryResident());
  NetServerOptions options;
  options.workers = 2;
  NetServer server(options, MakeMinidbHandler(&engine));
  ASSERT_TRUE(server.Start());

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(client.Send(TxnRequestFrame(id)));
  }
  server.Shutdown();
  server.Shutdown();  // idempotent
  SUCCEED();
}

}  // namespace
}  // namespace net
