// Durable compressed history store for per-epoch metric snapshots.
//
// StatStore persists one EpochSample per epoch into append-only segment
// files under a directory:
//
//   <dir>/seg-00000001.sst, seg-00000002.sst, ...
//
// Each segment starts with an 8-byte header (magic + version) followed by
// framed records: {u32 payload_len, u32 checksum, payload}, where payloads
// are the streaming compressed records of segment.h. A segment is sealed
// (fsync'd, never written again) once it crosses max_segment_bytes; the
// next Append rotates to a fresh segment whose first record is a key frame.
// Retention is by segment count: when max_segments is exceeded the oldest
// sealed segment is deleted, so the store's disk footprint is bounded.
//
// Crash recovery (Open): every segment is replayed front to back; the first
// record that is short, fails its checksum, or does not decode marks the
// torn tail, and the file is truncated back to the last good record. The
// recovered store then rotates to a new segment rather than resuming the
// torn one, so sealed history is immutable. The durability contract mirrors
// the redo log's: everything up to the last seal survives any crash, and of
// the unsealed tail an unbroken prefix of whole records survives — never a
// partial or corrupt sample.
//
// Fault injection (failpoints under options.fault_scope):
//   <scope>/write_error  Append fails without writing; the store stays usable
//   <scope>/torn_write   a seeded-random prefix of the frame reaches the
//                        file and the store wedges (crash simulation); a new
//                        StatStore over the same dir recovers
//   <scope>/stall        Append blocks an extra options.stall_us first
//
// Thread-safe; Append is intended for the vprofd harvester thread while
// Query/ListSeries serve concurrent readers.
#ifndef SRC_STATSTORE_STORE_H_
#define SRC_STATSTORE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/statstore/segment.h"

namespace statstore {

struct StoreOptions {
  std::string dir;

  // Seal the open segment and rotate once it reaches this size. Smaller
  // segments bound the worst-case crash loss and the per-query replay cost;
  // larger ones amortize the key frame better.
  uint64_t max_segment_bytes = 256 * 1024;

  // Maximum number of segment files kept on disk; the oldest sealed
  // segments are deleted past it. 0 = unbounded.
  uint64_t max_segments = 0;

  // fsync on seal makes sealed segments crash-durable (the unsealed tail is
  // buffered-write durable only, like the lazy redo-log policies).
  bool fsync_on_seal = true;

  // Failpoint namespace ("<scope>/write_error", "<scope>/torn_write",
  // "<scope>/stall", "<scope>/crash_on_roll" — the last kills the store at
  // a segment roll, after the old segment sealed but before the new one
  // exists; reopening recovers).
  std::string fault_scope = "statstore";

  // Extra latency of an injected <scope>/stall, and the seed for the
  // <scope>/torn_write prefix length.
  double stall_us = 20000.0;
  uint64_t torn_seed = 0x5EED5EEDull;
};

enum class AppendStatus : uint8_t {
  kOk,
  kIoError,   // injected or real write failure; the sample was not persisted
  kWedged,    // a previous torn write crashed the store; reopen to recover
  kBadEpoch,  // epoch not greater than the last persisted one
};

struct SeriesPoint {
  uint64_t epoch = 0;
  double value = 0.0;
};

struct StoreStats {
  uint64_t appends = 0;          // samples durably framed
  uint64_t append_errors = 0;    // failed appends (IO error / wedged)
  uint64_t segments_created = 0;
  uint64_t segments_sealed = 0;
  uint64_t segments_dropped = 0;  // retention deletions
  uint64_t bytes_written = 0;     // framing + payload, this process
  uint64_t values_dropped = 0;    // unencodable series names

  // Open()-time recovery results.
  uint64_t recovered_records = 0;
  uint64_t truncated_bytes = 0;    // torn-tail bytes removed
  uint64_t dropped_segments = 0;   // unreadable segments removed at open

  // Append wall latency (write path only), for the bounded-latency claim.
  uint64_t last_append_ns = 0;
  uint64_t max_append_ns = 0;
};

class StatStore {
 public:
  explicit StatStore(const StoreOptions& options);
  ~StatStore();

  StatStore(const StatStore&) = delete;
  StatStore& operator=(const StatStore&) = delete;

  // Creates the directory if needed, replays existing segments (verifying
  // checksums and truncating torn tails), and readies the store for
  // appends. Returns false only if the directory cannot be created or
  // listed; a damaged store recovers rather than failing.
  bool Open();

  // Persists one epoch's sample. Epochs must be strictly increasing.
  AppendStatus Append(const EpochSample& sample);

  // Seals the open segment (fsync) so everything appended so far is
  // crash-durable. The next Append starts a new segment.
  void Seal();

  // Decoded values of `series` for epochs in [min_epoch, max_epoch],
  // ascending, bit-exact as appended. Replays segment files; cost is
  // proportional to the store bytes overlapping the range.
  std::vector<SeriesPoint> Query(const std::string& series, uint64_t min_epoch,
                                 uint64_t max_epoch) const;

  // Union of series names across all segments, sorted.
  std::vector<std::string> ListSeries() const;

  // Epoch coverage: [first_epoch, last_epoch] over all records, 0/0 when
  // empty.
  uint64_t first_epoch() const;
  uint64_t last_epoch() const;
  uint64_t record_count() const;
  uint64_t segment_count() const;

  // Total segment bytes on disk (compressed size, for the bench).
  uint64_t disk_bytes() const;

  bool wedged() const;

  StoreStats stats() const;

  const StoreOptions& options() const { return options_; }

 private:
  struct SegmentInfo {
    std::string path;
    uint64_t first_epoch = 0;
    uint64_t last_epoch = 0;
    uint64_t records = 0;
    uint64_t bytes = 0;  // current file size
  };

  // Replays `path`, truncating its torn tail. Returns false if the segment
  // held no intact records (the file is deleted). Requires mu_ held.
  bool RecoverSegment(const std::string& path, SegmentInfo* info);
  // Opens a fresh segment file for appending. Requires mu_ held.
  bool RotateLocked();
  // Seals the open segment: flush, optional fsync, close. Requires mu_ held.
  void SealLocked();
  // Deletes oldest segments past options_.max_segments. Requires mu_ held.
  void EnforceRetentionLocked();

  const StoreOptions options_;
  const std::string fp_write_error_;
  const std::string fp_torn_write_;
  const std::string fp_stall_;
  const std::string fp_crash_on_roll_;

  mutable std::mutex mu_;
  std::vector<SegmentInfo> segments_;  // ascending by file name; last = open
  uint64_t next_segment_index_ = 1;
  std::FILE* open_file_ = nullptr;     // null when no open segment
  SegmentEncoder encoder_;             // codec state of the open segment
  bool wedged_ = false;
  StoreStats stats_;
};

}  // namespace statstore

#endif  // SRC_STATSTORE_STORE_H_
