# CMake generated Testfile for 
# Source directory: /root/repo/tests/statkit
# Build directory: /root/repo/build/tests/statkit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(statkit_welford_test "/root/repo/build/tests/statkit/statkit_welford_test")
set_tests_properties(statkit_welford_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;1;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_covariance_test "/root/repo/build/tests/statkit/statkit_covariance_test")
set_tests_properties(statkit_covariance_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;2;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_histogram_test "/root/repo/build/tests/statkit/statkit_histogram_test")
set_tests_properties(statkit_histogram_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;3;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_p2_quantile_test "/root/repo/build/tests/statkit/statkit_p2_quantile_test")
set_tests_properties(statkit_p2_quantile_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;4;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_summary_test "/root/repo/build/tests/statkit/statkit_summary_test")
set_tests_properties(statkit_summary_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;5;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_rng_test "/root/repo/build/tests/statkit/statkit_rng_test")
set_tests_properties(statkit_rng_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;6;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_distributions_test "/root/repo/build/tests/statkit/statkit_distributions_test")
set_tests_properties(statkit_distributions_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;7;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
add_test(statkit_decomposition_property_test "/root/repo/build/tests/statkit/statkit_decomposition_property_test")
set_tests_properties(statkit_decomposition_property_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/statkit/CMakeLists.txt;8;vp_add_test;/root/repo/tests/statkit/CMakeLists.txt;0;")
