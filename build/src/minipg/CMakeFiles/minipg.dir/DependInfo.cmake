
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minipg/engine.cc" "src/minipg/CMakeFiles/minipg.dir/engine.cc.o" "gcc" "src/minipg/CMakeFiles/minipg.dir/engine.cc.o.d"
  "/root/repo/src/minipg/executor.cc" "src/minipg/CMakeFiles/minipg.dir/executor.cc.o" "gcc" "src/minipg/CMakeFiles/minipg.dir/executor.cc.o.d"
  "/root/repo/src/minipg/predicate_locks.cc" "src/minipg/CMakeFiles/minipg.dir/predicate_locks.cc.o" "gcc" "src/minipg/CMakeFiles/minipg.dir/predicate_locks.cc.o.d"
  "/root/repo/src/minipg/wal.cc" "src/minipg/CMakeFiles/minipg.dir/wal.cc.o" "gcc" "src/minipg/CMakeFiles/minipg.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vprof/CMakeFiles/vprof.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/simio.dir/DependInfo.cmake"
  "/root/repo/build/src/statkit/CMakeFiles/statkit.dir/DependInfo.cmake"
  "/root/repo/build/src/minidb/CMakeFiles/minidb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
