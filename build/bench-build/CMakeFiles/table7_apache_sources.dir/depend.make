# Empty dependencies file for table7_apache_sources.
# This may be replaced when dependencies are built.
