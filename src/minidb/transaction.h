// Transaction context: identity, age (for VATS), and the lock set released
// at commit/abort (strict two-phase locking).
#ifndef SRC_MINIDB_TRANSACTION_H_
#define SRC_MINIDB_TRANSACTION_H_

#include <cstdint>
#include <vector>

namespace minidb {

// Why a transaction failed. Lock timeouts, deadlocks and I/O errors are
// transient — the client may retry the transaction; a crashed log needs
// recovery first.
enum class TxnError : uint8_t {
  kNone,
  kLockTimeout,
  kDeadlock,
  kIoError,      // log device failed the write/fsync
  kLogCrashed,   // redo log is down until Recover()
};

inline bool IsRetryable(TxnError error) {
  return error == TxnError::kLockTimeout || error == TxnError::kDeadlock ||
         error == TxnError::kIoError;
}

class Transaction {
 public:
  Transaction(uint64_t id, int64_t start_ts) : id_(id), start_ts_(start_ts) {}

  uint64_t id() const { return id_; }

  // Monotonic start timestamp; VATS grants contended locks to the
  // transaction with the smallest value (the oldest).
  int64_t start_ts() const { return start_ts_; }

  void AddLock(uint64_t object_id) { lock_set_.push_back(object_id); }
  const std::vector<uint64_t>& lock_set() const { return lock_set_; }
  void ClearLocks() { lock_set_.clear(); }

  void MarkAborted() { aborted_ = true; }
  bool aborted() const { return aborted_; }

  void set_error(TxnError error) { error_ = error; }
  TxnError error() const { return error_; }

 private:
  uint64_t id_;
  int64_t start_ts_;
  std::vector<uint64_t> lock_set_;
  bool aborted_ = false;
  TxnError error_ = TxnError::kNone;
};

}  // namespace minidb

#endif  // SRC_MINIDB_TRANSACTION_H_
