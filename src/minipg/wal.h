// Write-ahead log modeled on Postgres: one exclusive WALWriteLock guards the
// flush path, and backends use LWLockAcquireOrWait — "acquire the lock, or
// sleep until the current holder releases it and re-check whether our LSN
// already became durable" (group commit).
//
// Paper Table 6 attributes 76.8% of Postgres transaction latency variance to
// LWLockAcquireOrWait through exactly this call site; the paper's fix
// (Figure 4 right) is distributed logging across two disks, implemented here
// as multiple WalUnits with waiter-count-based placement.
#ifndef SRC_MINIPG_WAL_H_
#define SRC_MINIPG_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/simio/disk.h"
#include "src/vprof/sync.h"

namespace minipg {

struct WalStats {
  uint64_t inserts = 0;
  uint64_t flush_calls = 0;
  uint64_t flushes_performed = 0;  // times a backend actually held the lock
  uint64_t flush_waits = 0;        // times a backend slept on the write lock
};

// One log: an insert position, a flushed position, and the write lock.
class WalUnit {
 public:
  explicit WalUnit(const simio::DiskConfig& disk_config);

  // Reserves log space (XLogInsert); returns the record's end LSN.
  uint64_t Insert(uint64_t bytes);

  // Makes the log durable up to `lsn` (XLogFlush): acquire-or-wait on the
  // write lock; holders write + fsync a batch, waiters re-check on wakeup.
  void Flush(uint64_t lsn);

  uint64_t flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }
  uint64_t insert_lsn() const {
    return next_lsn_.load(std::memory_order_acquire);
  }
  int waiters() const { return waiters_.load(std::memory_order_relaxed); }

  WalStats stats() const;
  const simio::Disk& disk() const { return disk_; }

 private:
  // Instrumented LWLockAcquireOrWait. Returns true if the caller now holds
  // the write lock; false if it slept and should re-check flushed_lsn.
  bool AcquireOrWait(uint64_t lsn);
  void ReleaseAndWake();

  simio::Disk disk_;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> flushed_lsn_{0};
  std::atomic<uint64_t> pending_bytes_{0};
  std::atomic<int> waiters_{0};

  vprof::Mutex mu_;
  vprof::CondVar released_cv_;
  bool write_lock_held_ = false;

  mutable std::mutex stats_mu_;
  WalStats stats_;
};

// The paper's distributed-logging fix: N independent WAL units on separate
// disks; each transaction logs to the unit with the fewest waiters.
class Wal {
 public:
  Wal(int units, const simio::DiskConfig& disk_config);

  struct Position {
    int unit = 0;
    uint64_t lsn = 0;
  };

  // Chooses a unit (fewest waiters) and inserts.
  Position Insert(uint64_t bytes);

  // Inserts into a specific unit (follow-up records of the same txn).
  Position InsertAt(int unit, uint64_t bytes);

  void Flush(const Position& position);

  int unit_count() const { return static_cast<int>(units_.size()); }
  WalUnit& unit(int i) { return *units_[static_cast<size_t>(i)]; }

 private:
  std::vector<std::unique_ptr<WalUnit>> units_;
};

}  // namespace minipg

#endif  // SRC_MINIPG_WAL_H_
