file(REMOVE_RECURSE
  "CMakeFiles/minipg.dir/engine.cc.o"
  "CMakeFiles/minipg.dir/engine.cc.o.d"
  "CMakeFiles/minipg.dir/executor.cc.o"
  "CMakeFiles/minipg.dir/executor.cc.o.d"
  "CMakeFiles/minipg.dir/predicate_locks.cc.o"
  "CMakeFiles/minipg.dir/predicate_locks.cc.o.d"
  "CMakeFiles/minipg.dir/wal.cc.o"
  "CMakeFiles/minipg.dir/wal.cc.o.d"
  "libminipg.a"
  "libminipg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minipg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
