#include "src/vprof/analysis/flat_profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "src/statkit/welford.h"

namespace vprof {

std::vector<FunctionStats> ComputeFlatProfile(const Trace& trace) {
  struct Accumulator {
    statkit::StreamingMoments moments;
    double child_ns = 0.0;
  };
  std::unordered_map<FuncId, Accumulator> by_func;

  for (const ThreadTrace& thread : trace.threads) {
    for (const Invocation& inv : thread.invocations) {
      const double duration = static_cast<double>(inv.end - inv.start);
      by_func[inv.func].moments.Add(duration);
      if (inv.parent >= 0) {
        const Invocation& parent =
            thread.invocations[static_cast<size_t>(inv.parent)];
        by_func[parent.func].child_ns += duration;
      }
    }
  }

  std::vector<FunctionStats> out;
  out.reserve(by_func.size());
  for (const auto& [func, acc] : by_func) {
    FunctionStats stats;
    stats.func = func;
    stats.name = func < trace.function_names.size()
                     ? trace.function_names[func]
                     : "?";
    stats.calls = acc.moments.count();
    stats.mean_ns = acc.moments.mean();
    stats.total_ns = stats.mean_ns * static_cast<double>(stats.calls);
    stats.stddev_ns = acc.moments.stddev();
    stats.min_ns = acc.moments.min();
    stats.max_ns = acc.moments.max();
    stats.self_ns = stats.total_ns - acc.child_ns;
    out.push_back(std::move(stats));
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionStats& a, const FunctionStats& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

std::string FormatFlatProfile(const std::vector<FunctionStats>& profile,
                              size_t max_rows) {
  std::ostringstream out;
  out << "function                                 calls     total(ms)  "
         "self(ms)   mean(us)    sd(us)\n";
  size_t rows = 0;
  for (const FunctionStats& f : profile) {
    if (rows++ >= max_rows) {
      break;
    }
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-40s %8llu %10.2f %10.2f %10.1f %9.1f\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.calls), f.total_ns / 1e6,
                  f.self_ns / 1e6, f.mean_ns / 1e3, f.stddev_ns / 1e3);
    out << line;
  }
  return out.str();
}

}  // namespace vprof
