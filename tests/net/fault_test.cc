// Satellite: socket fault-injection. The net/* failpoints drive the accept,
// read and write paths into their failure branches deterministically; the
// assertions are the front-end's safety contract: no reply that was acked is
// ever lost or corrupted, no file descriptor leaks across connection churn
// and fault storms, and a peer that stops draining cannot stall anyone else
// (write-buffer-cap eviction + idle-timeout eviction).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/fault/failpoint.h"
#include "src/minidb/engine.h"
#include "src/net/client.h"
#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/net/socket.h"

namespace net {
namespace {

using namespace std::chrono_literals;

Frame PingFrame(uint64_t id) {
  Frame frame;
  frame.type = MsgType::kPing;
  frame.request_id = id;
  return frame;
}

Frame EchoReply(const Frame& request) {
  Frame reply;
  reply.type = MsgType::kTxnReply;
  reply.value = request.request_id * 7;
  return reply;
}

class NetFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::DeactivateAll(); }
};

TEST_F(NetFaultTest, NoFdLeaksAcrossChurnAndFaults) {
  const int fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0);
  {
    NetServer server(NetServerOptions{}, EchoReply);
    ASSERT_TRUE(server.Start());

    // Clean churn.
    for (int round = 0; round < 20; ++round) {
      BlockingClient client;
      ASSERT_TRUE(client.Connect(server.port()));
      Frame reply;
      ASSERT_TRUE(client.Call(PingFrame(1), &reply));
      client.Close();
    }
    // Churn under protocol errors (server-side close path).
    for (int round = 0; round < 10; ++round) {
      BlockingClient client;
      ASSERT_TRUE(client.Connect(server.port()));
      const char garbage[] = {9, 0, 0, 0, 99, 0, 0, 0, 0, 0, 0, 0, 0};
      ASSERT_TRUE(client.SendRaw(garbage, sizeof(garbage)));
      Frame reply;
      client.Recv(&reply, 1000);  // kError, then EOF
      client.Close();
    }
    // Churn under injected read EOFs.
    fault::Activate("net/read_eof", fault::Trigger::EveryNth(3));
    for (int round = 0; round < 10; ++round) {
      BlockingClient client;
      ASSERT_TRUE(client.Connect(server.port()));
      Frame reply;
      client.Send(PingFrame(2));
      client.Recv(&reply, 200);  // may be answered or EOF'd; both fine
      client.Close();
    }
    fault::Deactivate("net/read_eof");
    server.Shutdown();
    EXPECT_GE(server.stats().read_eofs, 1u);
  }
  // Give the kernel a beat, then every descriptor must be back.
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(CountOpenFds(), fds_before);
}

TEST_F(NetFaultTest, AcceptErrorFailpointDropsConnectionsNotTheServer) {
  NetServer server(NetServerOptions{}, EchoReply);
  ASSERT_TRUE(server.Start());

  fault::Activate("net/accept_error", fault::Trigger::EveryNth(2));
  int served = 0;
  int dropped = 0;
  for (int round = 0; round < 10; ++round) {
    BlockingClient client;
    ASSERT_TRUE(client.Connect(server.port()));  // loopback always connects
    Frame reply;
    if (client.Call(PingFrame(1), &reply, 500)) {
      ++served;
    } else {
      ++dropped;  // the server closed the fd as if accept had failed
    }
    client.Close();
  }
  fault::Deactivate("net/accept_error");
  EXPECT_GT(served, 0);
  EXPECT_GT(dropped, 0);
  EXPECT_GE(server.stats().accept_errors, 1u);

  // Disarmed: the accept path is healthy again.
  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  Frame reply;
  EXPECT_TRUE(client.Call(PingFrame(9), &reply));
  server.Shutdown();
}

TEST_F(NetFaultTest, ShortWritesLoseNoAckedReply) {
  NetServer server(NetServerOptions{}, EchoReply);
  ASSERT_TRUE(server.Start());

  BlockingClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Every server write is truncated to 3 bytes: replies cross the wire in
  // dribbles across many EPOLLOUT rounds. All of them must still arrive
  // whole — the partial-write state machine may be slow, never lossy.
  fault::Activate("net/short_write", fault::Trigger::AlwaysWithValue(3));
  constexpr uint64_t kRequests = 20;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    Frame request;
    request.type = MsgType::kTxn;
    request.request_id = id;
    request.txn.type = minidb::TxnType::kOrderStatus;
    ASSERT_TRUE(client.Send(request));
  }
  uint64_t received = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    Frame reply;
    ASSERT_TRUE(client.Recv(&reply, 5000)) << "reply " << i << " lost";
    EXPECT_EQ(reply.type, MsgType::kTxnReply);
    EXPECT_EQ(reply.value, reply.request_id * 7) << "reply corrupted";
    ++received;
  }
  EXPECT_EQ(received, kRequests);
  fault::Deactivate("net/short_write");
  client.Close();
  server.Shutdown();
  EXPECT_EQ(server.stats().replies_sent, kRequests);
}

TEST_F(NetFaultTest, WriteBufferCapEvictsTheSlowPeer) {
  NetServerOptions options;
  options.write_buffer_cap = 256;  // ~a dozen reply frames
  NetServer server(options, EchoReply);
  ASSERT_TRUE(server.Start());

  BlockingClient victim;
  ASSERT_TRUE(victim.Connect(server.port()));

  // The peer "stops draining": every server write pretends EAGAIN, so each
  // reply lands in the connection outbox until the cap trips.
  fault::Activate("net/slow_peer", fault::Trigger::Always());
  for (uint64_t id = 1; id <= 40; ++id) {
    ASSERT_TRUE(victim.Send(PingFrame(id)));
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (server.stats().slow_peer_evictions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  fault::Deactivate("net/slow_peer");
  EXPECT_GE(server.stats().slow_peer_evictions, 1u);

  // The victim was closed; a fresh connection is served normally.
  Frame reply;
  EXPECT_FALSE(victim.Recv(&reply, 1000));
  victim.Close();
  BlockingClient healthy;
  ASSERT_TRUE(healthy.Connect(server.port()));
  EXPECT_TRUE(healthy.Call(PingFrame(99), &reply));
  server.Shutdown();
}

TEST_F(NetFaultTest, StuckPeerDoesNotStallOtherConnections) {
  NetServerOptions options;
  options.idle_timeout_ms = 150;
  options.sweep_interval_ms = 20;
  NetServer server(options, EchoReply);
  ASSERT_TRUE(server.Start());

  // A peer that connects and then does nothing — never reads, never writes.
  BlockingClient stuck;
  ASSERT_TRUE(stuck.Connect(server.port()));

  // Meanwhile a healthy client gets every answer promptly.
  BlockingClient healthy;
  ASSERT_TRUE(healthy.Connect(server.port()));
  for (uint64_t id = 1; id <= 50; ++id) {
    Frame reply;
    ASSERT_TRUE(healthy.Call(PingFrame(id), &reply, 1000))
        << "healthy connection stalled behind a stuck peer";
  }

  // And the stuck peer is eventually swept out by the idle timeout.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (server.stats().idle_evictions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(server.stats().idle_evictions, 1u);
  healthy.Close();
  stuck.Close();
  server.Shutdown();
}

}  // namespace
}  // namespace net
