// TPC-C-style workload generator and closed-loop driver for minidb/minipg.
//
// The paper drives MySQL and Postgres with the TPC-C benchmark via
// OLTP-Bench; this module generates the same transaction mix (NewOrder,
// Payment, OrderStatus, Delivery, StockLevel) from a deterministic seed and
// runs it closed-loop from a configurable number of connection threads.
#ifndef SRC_WORKLOAD_TPCC_H_
#define SRC_WORKLOAD_TPCC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/minidb/engine.h"
#include "src/statkit/distributions.h"
#include "src/statkit/rng.h"

namespace workload {

struct TpccOptions {
  int threads = 4;
  int transactions_per_thread = 500;

  // Transaction mix in percent; remainder goes to StockLevel.
  int pct_new_order = 45;
  int pct_payment = 43;
  int pct_order_status = 4;
  int pct_delivery = 4;

  int min_items = 3;
  int max_items = 8;

  // Access skew (TPC-C's NURand analogue): 0 = uniform; ~0.9 concentrates
  // accesses on a few hot customers/items, raising record contention.
  double customer_zipf_theta = 0.0;
  double item_zipf_theta = 0.0;

  // Optional client think time between transactions (us).
  double think_time_us = 0.0;

  // Warehouse partitioning (the scale-out benchmark shape): each worker
  // thread gets a home warehouse (thread t -> warehouse t mod warehouses)
  // and issues its transactions there, so threads stop colliding on one
  // warehouse's hot rows and the engines' scalability becomes observable.
  // Payments cross to a uniformly-chosen remote warehouse with probability
  // remote_payment_fraction (TPC-C's ~15% remote payments), keeping some
  // cross-partition traffic.
  bool partition_by_warehouse = false;
  double remote_payment_fraction = 0.15;

  // Retry policy for retryable aborts (lock timeout, deadlock, log I/O
  // error): up to max_retries re-executions with capped exponential backoff
  // and deterministic per-thread jitter. 0 disables retries.
  int max_retries = 3;
  double backoff_base_us = 50.0;
  double backoff_cap_us = 2000.0;

  uint64_t seed = 99;
};

struct TpccResult {
  std::vector<double> latencies_ns;  // committed requests, incl. retry time
  uint64_t committed = 0;            // requests that eventually committed
  uint64_t aborted = 0;              // requests that ultimately failed
  uint64_t retries = 0;              // re-executions after retryable aborts
  uint64_t retries_exhausted = 0;    // requests that failed all attempts
  uint64_t non_retryable_aborts = 0; // requests aborted with no retry
  uint64_t engine_aborts = 0;        // engine aborted_count() delta (Run only)
  double backoff_time_us = 0.0;      // total time slept backing off
  double duration_s = 0.0;
  double throughput_tps = 0.0;
};

// Generates TPC-C-style requests for a given engine scale.
class TpccGenerator {
 public:
  TpccGenerator(const TpccOptions& options, int warehouses);

  minidb::TxnRequest Next(statkit::Rng& rng) const;

  // As Next(), but with a home-warehouse affinity: when partitioning is on
  // and home_warehouse >= 0, the request targets the home warehouse (except
  // remote payments, see TpccOptions). home_warehouse < 0 falls back to the
  // uniform draw.
  minidb::TxnRequest Next(statkit::Rng& rng, int home_warehouse) const;

 private:
  TpccOptions options_;
  int warehouses_;
  std::unique_ptr<statkit::ZipfGenerator> customer_zipf_;
  std::unique_ptr<statkit::ZipfGenerator> item_zipf_;
};

// Closed-loop driver: `threads` connection threads each execute
// `transactions_per_thread` requests back to back.
class TpccDriver {
 public:
  TpccDriver(minidb::Engine* engine, const TpccOptions& options);

  TpccResult Run();

  // Runs the workload through an arbitrary executor (used by minipg, which
  // shares the request shape). The executor returns true on commit; failures
  // are treated as non-retryable since a bool carries no error type.
  using Executor = std::function<bool(const minidb::TxnRequest&)>;
  TpccResult RunWith(const Executor& executor, int warehouses);

  // As RunWith, but with typed outcomes so retryable aborts go through the
  // driver's backoff-and-retry loop.
  using TypedExecutor =
      std::function<minidb::TxnOutcome(const minidb::TxnRequest&)>;
  TpccResult RunTyped(const TypedExecutor& executor, int warehouses);

  // Open-ended variants for long-running servers (the online profiling
  // service): each thread keeps issuing transactions until `stop` becomes
  // true; transactions_per_thread is ignored.
  TpccResult RunUntil(const std::atomic<bool>& stop);
  TpccResult RunTypedUntil(const TypedExecutor& executor, int warehouses,
                           const std::atomic<bool>& stop);

 private:
  TpccResult RunLoop(const TypedExecutor& executor, int warehouses,
                     const std::atomic<bool>* stop);

  minidb::Engine* engine_;
  TpccOptions options_;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_TPCC_H_
