# Empty dependencies file for vprof_chrome_trace_test.
# This may be replaced when dependencies are built.
