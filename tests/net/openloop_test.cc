// Satellite: open-loop statistical self-test. The generator's arrival
// schedules must have the statistics they claim — inter-arrival CV ≈ 1 for
// Poisson, CV > 1 for the bursty MMPP at a fixed seed, mean equal to the
// configured rate — and the driver's accounting must be exact at drain:
// sent == acked + rejected + failed + in_flight, always.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/net/frontend.h"
#include "src/net/server.h"
#include "src/workload/openloop.h"

namespace workload {
namespace {

using namespace std::chrono_literals;

constexpr size_t kSamples = 20000;
constexpr uint64_t kSeed = 20260809;

ArrivalConfig Poisson(double rate) {
  ArrivalConfig config;
  config.process = ArrivalProcess::kPoisson;
  config.rate_per_sec = rate;
  return config;
}

ArrivalConfig Bursty(double rate) {
  ArrivalConfig config;
  config.process = ArrivalProcess::kBursty;
  config.rate_per_sec = rate;
  return config;
}

TEST(OpenLoopArrivalsTest, PoissonInterArrivalCvIsNearOne) {
  const std::vector<int64_t> gaps =
      GenerateInterArrivalsNs(Poisson(2000.0), kSamples, kSeed);
  ASSERT_EQ(gaps.size(), kSamples);
  const double cv = CoefficientOfVariation(gaps);
  // Exponential inter-arrivals: CV = 1 exactly in distribution; with 20k
  // samples the estimate lands well inside +-10%.
  EXPECT_GT(cv, 0.9);
  EXPECT_LT(cv, 1.1);
}

TEST(OpenLoopArrivalsTest, BurstyInterArrivalCvExceedsOne) {
  const std::vector<int64_t> gaps =
      GenerateInterArrivalsNs(Bursty(2000.0), kSamples, kSeed);
  const double cv = CoefficientOfVariation(gaps);
  // MMPP mixes two exponential regimes: strictly overdispersed. The default
  // shape (8x burst, 10% duty) sits far above 1.
  EXPECT_GT(cv, 1.3) << "bursty schedule is not overdispersed";

  // And clearly burstier than the Poisson schedule at the same seed+rate.
  const double poisson_cv = CoefficientOfVariation(
      GenerateInterArrivalsNs(Poisson(2000.0), kSamples, kSeed));
  EXPECT_GT(cv, poisson_cv + 0.2);
}

TEST(OpenLoopArrivalsTest, MeanMatchesConfiguredRateForBothShapes) {
  {
    const std::vector<int64_t> gaps =
        GenerateInterArrivalsNs(Poisson(1500.0), kSamples, kSeed);
    const double expected_ns = 1e9 / 1500.0;
    EXPECT_NEAR(MeanNs(gaps), expected_ns, expected_ns * 0.08) << "poisson";
  }
  {
    // The MMPP's effective sample size is the number of calm/burst cycles
    // (~200 ms each at the default shape), not the number of gaps: at
    // 1500/s, 200k gaps span ~133 s ≈ 660 cycles whose exponential dwells
    // leave the sample mean with ~2.5% relative sigma. 15% is ~6 sigma.
    const std::vector<int64_t> gaps =
        GenerateInterArrivalsNs(Bursty(1500.0), 10 * kSamples, kSeed);
    const double expected_ns = 1e9 / 1500.0;
    EXPECT_NEAR(MeanNs(gaps), expected_ns, expected_ns * 0.15) << "bursty";
  }
}

TEST(OpenLoopArrivalsTest, SchedulesAreDeterministicInTheSeed) {
  const auto a = GenerateInterArrivalsNs(Bursty(1000.0), 5000, 123);
  const auto b = GenerateInterArrivalsNs(Bursty(1000.0), 5000, 123);
  const auto c = GenerateInterArrivalsNs(Bursty(1000.0), 5000, 124);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(OpenLoopArrivalsTest, PercentileHandlesEdgeCases) {
  EXPECT_EQ(PercentileNs({}, 99.0), 0);
  EXPECT_EQ(PercentileNs({42}, 50.0), 42);
  std::vector<int64_t> ramp;
  for (int64_t i = 1; i <= 1000; ++i) {
    ramp.push_back(i);
  }
  EXPECT_EQ(PercentileNs(ramp, 0.0), 1);
  EXPECT_EQ(PercentileNs(ramp, 100.0), 1000);
  const int64_t p50 = PercentileNs(ramp, 50.0);
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 2.0);
}

net::Frame PingRequest(uint64_t) {
  net::Frame frame;
  frame.type = net::MsgType::kPing;
  return frame;
}

OpenLoopOptions DriverOptions(uint16_t port, double rate, size_t requests) {
  OpenLoopOptions options;
  options.port = port;
  options.connections = 16;
  options.total_requests = requests;
  options.arrivals = Poisson(rate);
  options.seed = kSeed;
  options.make_request = PingRequest;
  return options;
}

TEST(OpenLoopDriverTest, AccountingIsExactAtDrainWhenAllServed) {
  net::NetServer server(net::NetServerOptions{}, [](const net::Frame&) {
    net::Frame reply;
    reply.type = net::MsgType::kTxnReply;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  const OpenLoopResult result =
      RunOpenLoop(DriverOptions(server.port(), 2000.0, 1000));
  server.Shutdown();

  ASSERT_FALSE(result.connect_failed);
  EXPECT_EQ(result.sent, 1000u);
  EXPECT_EQ(result.sent,
            result.acked + result.rejected + result.failed + result.in_flight);
  EXPECT_EQ(result.in_flight, 0u) << "healthy server must drain fully";
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.acked, result.latencies_ns.size());
  EXPECT_GT(result.achieved_per_s, 0.0);
}

TEST(OpenLoopDriverTest, AccountingIsExactUnderShedding) {
  // One slow worker + depth-2 queue: a 2000/s offered rate must shed.
  net::NetServerOptions server_options;
  server_options.workers = 1;
  server_options.max_dispatch_depth = 2;
  net::NetServer server(server_options, [](const net::Frame&) {
    std::this_thread::sleep_for(2ms);
    net::Frame reply;
    reply.type = net::MsgType::kTxnReply;
    return reply;
  });
  ASSERT_TRUE(server.Start());

  OpenLoopOptions options = DriverOptions(server.port(), 2000.0, 800);
  // kTxn requests go through the dispatch queue (pings answer inline).
  options.make_request = [](uint64_t) {
    net::Frame frame;
    frame.type = net::MsgType::kTxn;
    frame.txn.type = minidb::TxnType::kOrderStatus;
    return frame;
  };
  const OpenLoopResult result = RunOpenLoop(options);
  server.Shutdown();

  ASSERT_FALSE(result.connect_failed);
  EXPECT_EQ(result.sent,
            result.acked + result.rejected + result.failed + result.in_flight);
  EXPECT_GT(result.rejected, 0u) << "overload never shed";
  EXPECT_GT(result.acked, 0u);
  // Latencies are recorded only for acked requests.
  EXPECT_EQ(result.acked, result.latencies_ns.size());
}

TEST(OpenLoopDriverTest, DeadServerMidRunLandsInFailedNotLimbo) {
  auto server = std::make_unique<net::NetServer>(
      net::NetServerOptions{}, [](const net::Frame&) {
        net::Frame reply;
        reply.type = net::MsgType::kTxnReply;
        return reply;
      });
  ASSERT_TRUE(server->Start());
  const uint16_t port = server->port();

  // Shut the server down while the schedule is still running.
  std::thread killer([&server] {
    std::this_thread::sleep_for(150ms);
    server->Shutdown();
  });
  OpenLoopOptions options = DriverOptions(port, 1000.0, 600);
  options.drain_timeout_ms = 1000;
  const OpenLoopResult result = RunOpenLoop(options);
  killer.join();

  // Whatever happened, the books balance.
  EXPECT_EQ(result.sent,
            result.acked + result.rejected + result.failed + result.in_flight);
}

}  // namespace
}  // namespace workload
