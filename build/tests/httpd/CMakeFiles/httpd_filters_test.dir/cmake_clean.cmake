file(REMOVE_RECURSE
  "CMakeFiles/httpd_filters_test.dir/filters_test.cc.o"
  "CMakeFiles/httpd_filters_test.dir/filters_test.cc.o.d"
  "httpd_filters_test"
  "httpd_filters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
