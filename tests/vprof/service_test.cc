// Tests for the vprofd service pieces: epoch harvesting, the refinement
// controller's expand/retire policy, and the composed daemon.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/probe.h"
#include "src/vprof/registry.h"
#include "src/vprof/runtime.h"
#include "src/vprof/service/controller.h"
#include "src/vprof/service/harvester.h"
#include "src/vprof/service/online_tree.h"
#include "src/vprof/service/vprofd.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

// ---------------------------------------------------------------------------
// RefinementController
// ---------------------------------------------------------------------------

// Interval layout: txn spans the interval with children a ([base, base+a_i]),
// b (constant 200ns) and a 50ns txn body tail. Function names are
// parameterized so each test owns a disjoint slice of the global registry.
Trace BuildControllerTrace(const std::string& prefix,
                           const std::vector<TimeNs>& a_durations,
                           TimeNs b_duration = 200) {
  TraceBuilder tb;
  for (size_t i = 0; i < a_durations.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 100000;
    const TimeNs a_end = base + a_durations[i];
    const TimeNs b_end = a_end + b_duration;
    const TimeNs end = b_end + 50;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    tb.Begin(0, sid, base).End(0, sid, end);
    tb.Exec(0, sid, base, end);
    const int txn = tb.Invoke(0, prefix + "_txn", base, end, -1, sid);
    tb.Invoke(0, prefix + "_a", base, a_end, txn, sid);
    tb.Invoke(0, prefix + "_b", a_end, b_end, txn, sid);
  }
  return tb.Build();
}

// txn -> {a, b}, a -> a_leaf, b -> b_leaf.
CallGraph BuildControllerGraph(const std::string& prefix) {
  CallGraph graph;
  graph.AddEdge(prefix + "_txn", prefix + "_a");
  graph.AddEdge(prefix + "_txn", prefix + "_b");
  graph.AddEdge(prefix + "_a", prefix + "_a_leaf");
  graph.AddEdge(prefix + "_b", prefix + "_b_leaf");
  return graph;
}

TEST(RefinementControllerTest, InitialSetIsRootPlusDirectCallees) {
  const std::string p = "ctl_init";
  const CallGraph graph = BuildControllerGraph(p);
  const FuncId root = RegisterFunction(p + "_txn");
  RefinementController controller(root, &graph);

  const int flips = controller.ApplyInstrumentation();
  EXPECT_EQ(flips, 3);  // txn, a, b enabled; leaves untouched (off)
  EXPECT_TRUE(IsFunctionEnabled(root));
  EXPECT_TRUE(IsFunctionEnabled(RegisterFunction(p + "_a")));
  EXPECT_TRUE(IsFunctionEnabled(RegisterFunction(p + "_b")));
  EXPECT_FALSE(IsFunctionEnabled(RegisterFunction(p + "_a_leaf")));
  EXPECT_FALSE(IsFunctionEnabled(RegisterFunction(p + "_b_leaf")));

  const ControllerStatus status = controller.status();
  EXPECT_EQ(status.instrumented.size(), 3u);
  // Idempotent: a second apply flips nothing.
  EXPECT_EQ(controller.ApplyInstrumentation(), 0);
}

TEST(RefinementControllerTest, ExpandsSelectedHighVarianceFactor) {
  const std::string p = "ctl_expand";
  const CallGraph graph = BuildControllerGraph(p);
  const FuncId root = RegisterFunction(p + "_txn");
  ControllerOptions options;
  options.min_weight = 1.0;
  RefinementController controller(root, &graph, options);
  controller.ApplyInstrumentation();

  OnlineVarianceTree tree;
  tree.Fold(BuildControllerTrace(p, {100, 900, 300, 1500, 500, 2100}));
  const int flips = controller.Step(tree.Snapshot());

  // `a` carries all the variance and has a callee -> its subtree is entered.
  EXPECT_EQ(flips, 1);
  EXPECT_TRUE(IsFunctionEnabled(RegisterFunction(p + "_a_leaf")));
  EXPECT_FALSE(IsFunctionEnabled(RegisterFunction(p + "_b_leaf")));

  const ControllerStatus status = controller.status();
  EXPECT_EQ(status.steps, 1u);
  EXPECT_EQ(status.expansions, 1u);
  EXPECT_EQ(status.last_changes, 1);
  ASSERT_FALSE(status.selection.empty());
  EXPECT_EQ(status.selection[0].func_a, RegisterFunction(p + "_a"));
}

TEST(RefinementControllerTest, RetiresFunctionAfterSustainedLowContribution) {
  const std::string p = "ctl_retire";
  const CallGraph graph = BuildControllerGraph(p);
  const FuncId root = RegisterFunction(p + "_txn");
  ControllerOptions options;
  options.min_weight = 1.0;
  options.retire_patience = 2;
  RefinementController controller(root, &graph, options);
  controller.ApplyInstrumentation();

  OnlineTreeOptions tree_options;
  tree_options.decay_half_life_epochs = 1.0;  // forget the old regime fast
  OnlineVarianceTree tree(tree_options);

  // Regime 1: `a` varies -> expanded.
  tree.Fold(BuildControllerTrace(p, {100, 900, 300, 1500, 500, 2100}));
  controller.Step(tree.Snapshot());
  ASSERT_TRUE(IsFunctionEnabled(RegisterFunction(p + "_a_leaf")));

  // Regime 2: `a` goes flat while `b` varies. As the window decays, every
  // factor involving `a` drops under the retirement floor and its subtree
  // is de-instrumented again.
  for (int epoch = 0; epoch < 15; ++epoch) {
    TraceBuilder tb;
    for (int i = 0; i < 6; ++i) {
      const TimeNs base = static_cast<TimeNs>(i) * 100000;
      const TimeNs b_dur = 200 + 400 * ((i + epoch) % 3);
      const TimeNs a_end = base + 100;
      const TimeNs b_end = a_end + b_dur;
      const TimeNs end = b_end + 50;
      const IntervalId sid = static_cast<IntervalId>(i + 1);
      tb.Begin(0, sid, base).End(0, sid, end);
      tb.Exec(0, sid, base, end);
      const int txn = tb.Invoke(0, p + "_txn", base, end, -1, sid);
      tb.Invoke(0, p + "_a", base, a_end, txn, sid);
      tb.Invoke(0, p + "_b", a_end, b_end, txn, sid);
    }
    tree.Fold(tb.Build());
    controller.Step(tree.Snapshot());
  }

  EXPECT_FALSE(IsFunctionEnabled(RegisterFunction(p + "_a_leaf")));
  EXPECT_GE(controller.status().retirements, 1u);
  // `b` took over the variance and was expanded in turn.
  EXPECT_TRUE(IsFunctionEnabled(RegisterFunction(p + "_b_leaf")));
}

TEST(RefinementControllerTest, SkipsStepsBelowMinWeight) {
  const std::string p = "ctl_skip";
  const CallGraph graph = BuildControllerGraph(p);
  const FuncId root = RegisterFunction(p + "_txn");
  RefinementController controller(root, &graph);  // default min_weight = 30
  controller.ApplyInstrumentation();

  OnlineVarianceTree tree;
  tree.Fold(BuildControllerTrace(p, {100, 900, 300}));  // weight 3 < 30
  EXPECT_EQ(controller.Step(tree.Snapshot()), 0);

  const ControllerStatus status = controller.status();
  EXPECT_EQ(status.steps, 1u);
  EXPECT_EQ(status.skipped, 1u);
  EXPECT_FALSE(IsFunctionEnabled(RegisterFunction(p + "_a_leaf")));
}

TEST(RefinementControllerTest, ConvergesWhenInstrumentationStopsChanging) {
  const std::string p = "ctl_conv";
  const CallGraph graph = BuildControllerGraph(p);
  const FuncId root = RegisterFunction(p + "_txn");
  ControllerOptions options;
  options.min_weight = 1.0;
  RefinementController controller(root, &graph, options);
  controller.ApplyInstrumentation();
  EXPECT_FALSE(controller.Converged(1));

  OnlineVarianceTree tree;
  tree.Fold(BuildControllerTrace(p, {100, 900, 300, 1500, 500, 2100}));
  controller.Step(tree.Snapshot());  // expands `a`: not yet stable

  for (int i = 0; i < 3; ++i) {
    tree.Fold(BuildControllerTrace(p, {100, 900, 300, 1500, 500, 2100}));
    EXPECT_EQ(controller.Step(tree.Snapshot()), 0);
  }
  EXPECT_TRUE(controller.Converged(3));
  EXPECT_EQ(controller.status().stable_steps, 3);
}

// ---------------------------------------------------------------------------
// EpochHarvester
// ---------------------------------------------------------------------------

void HarvestedWork() {
  VPROF_FUNC("service_test_fn");
}

TEST(EpochHarvesterTest, RotatesEpochsAndDeliversEveryTrace) {
  const FuncId fn = RegisterFunction("service_test_fn");
  SetFunctionEnabled(fn, true);

  std::atomic<bool> stop_worker{false};
  std::thread worker([&] {
    while (!stop_worker.load(std::memory_order_acquire)) {
      const IntervalId sid = BeginInterval();
      for (int i = 0; i < 50; ++i) {
        HarvestedWork();
      }
      EndInterval(sid);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<uint64_t> sink_calls{0};
  std::atomic<uint64_t> invocations{0};
  HarvesterOptions options;
  options.epoch_ns = 15'000'000;  // 15 ms
  options.sink = [&](Trace&& trace) {
    sink_calls.fetch_add(1);
    for (const ThreadTrace& t : trace.threads) {
      invocations.fetch_add(t.invocations.size());
    }
  };

  EpochHarvester harvester(std::move(options));
  EXPECT_FALSE(harvester.running());
  harvester.Start();
  EXPECT_TRUE(harvester.running());
  harvester.Start();  // no-op while running

  while (harvester.epochs() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  harvester.Stop();
  EXPECT_FALSE(harvester.running());
  harvester.Stop();  // idempotent

  stop_worker.store(true, std::memory_order_release);
  worker.join();

  // The final partial epoch is harvested too, so every epoch reached a sink.
  EXPECT_EQ(sink_calls.load(), harvester.epochs());
  EXPECT_GE(harvester.epochs(), 3u);
  EXPECT_GT(invocations.load(), 0u);
  // From the second epoch on, the rotation gap (sink + quiesce) is measured.
  EXPECT_GT(harvester.max_gap_ns(), 0);
  EXPECT_LE(harvester.last_gap_ns(), harvester.max_gap_ns());
  EXPECT_GE(harvester.total_gap_ns(), harvester.max_gap_ns());

  SetFunctionEnabled(fn, false);
}

TEST(EpochHarvesterTest, StopWithoutStartIsSafe) {
  HarvesterOptions options;
  EpochHarvester harvester(std::move(options));
  harvester.Stop();
  EXPECT_EQ(harvester.epochs(), 0u);
}

// ---------------------------------------------------------------------------
// Vprofd
// ---------------------------------------------------------------------------

void VprofdChildWork() {
  VPROF_FUNC("vprofd_test_child");
  volatile int x = 0;
  for (int i = 0; i < 100; ++i) {
    x = x + i;
  }
}

void VprofdRootWork() {
  VPROF_FUNC("vprofd_test_root");
  VprofdChildWork();
}

TEST(VprofdTest, HarvestsAggregatesAndExportsMetrics) {
  auto graph = std::make_shared<CallGraph>();
  graph->AddEdge("vprofd_test_root", "vprofd_test_child");

  std::atomic<bool> stop_worker{false};
  std::thread worker([&] {
    while (!stop_worker.load(std::memory_order_acquire)) {
      const IntervalId sid = BeginInterval();
      VprofdRootWork();
      EndInterval(sid);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  VprofdOptions options;
  options.root_function = "vprofd_test_root";
  options.graph = graph;
  options.epoch_ns = 15'000'000;  // 15 ms
  options.controller.min_weight = 5.0;
  Vprofd daemon(std::move(options));
  daemon.Start();

  while (daemon.epochs() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  daemon.Stop();
  stop_worker.store(true, std::memory_order_release);
  worker.join();

  const OnlineTreeSnapshot snap = daemon.Snapshot();
  EXPECT_GE(snap.epochs, 4u);
  EXPECT_GT(snap.weight, 0.0);
  EXPECT_GT(snap.overall_mean(), 0.0);

  bool found_root = false;
  for (size_t i = 0; i < snap.nodes.size(); ++i) {
    if (snap.NodeLabel(static_cast<NodeId>(i)) == "vprofd_test_root") {
      found_root = true;
    }
  }
  EXPECT_TRUE(found_root);

  const ControllerStatus status = daemon.controller_status();
  EXPECT_GE(status.steps, 4u);

  const std::string metrics = daemon.MetricsText();
  EXPECT_NE(metrics.find("vprofd_harvest_epochs_total"), std::string::npos);
  EXPECT_NE(metrics.find("vprofd_rotation_gap_ns"), std::string::npos);
  EXPECT_NE(metrics.find("vprofd_controller_steps_total"), std::string::npos);
  EXPECT_NE(metrics.find("vprof_node_mean_ns"), std::string::npos);

  // Start applied the instrumentation: root and child probes are enabled.
  EXPECT_TRUE(IsFunctionEnabled(RegisterFunction("vprofd_test_root")));
  SetFunctionEnabled(RegisterFunction("vprofd_test_root"), false);
  SetFunctionEnabled(RegisterFunction("vprofd_test_child"), false);
}

TEST(VprofdTest, NullGraphRunsAsPureAggregator) {
  VprofdOptions options;
  options.root_function = "vprofd_test_noctl_root";
  options.epoch_ns = 10'000'000;
  Vprofd daemon(std::move(options));
  daemon.Start();
  while (daemon.epochs() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  daemon.Stop();
  // No controller: zero steps, nothing instrumented by the service.
  EXPECT_EQ(daemon.controller_status().steps, 0u);
  EXPECT_FALSE(IsFunctionEnabled(RegisterFunction("vprofd_test_noctl_root")));
}

}  // namespace
}  // namespace vprof
