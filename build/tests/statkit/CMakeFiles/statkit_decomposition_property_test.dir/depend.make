# Empty dependencies file for statkit_decomposition_property_test.
# This may be replaced when dependencies are built.
