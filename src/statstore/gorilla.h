// Gorilla-style compression primitives (Pelkonen et al., VLDB 2015):
// delta-of-delta encoding for monotone epoch counters/timestamps and
// leading/trailing-zero XOR encoding for IEEE-754 doubles.
//
// Both codecs are stateful streams: the encoder carries the previous value
// (and window, for XOR) forward, so each Append emits only the few bits the
// new value needs. Variance-tree metric streams are ideal inputs — epoch
// numbers advance by a constant delta (delta-of-delta == 0, one bit per
// epoch) and folded means/variances drift slowly (XOR of consecutive
// doubles shares most significant bits). Decoding replays the stream from
// the front and reproduces every value bit-exactly.
#ifndef SRC_STATSTORE_GORILLA_H_
#define SRC_STATSTORE_GORILLA_H_

#include <cstdint>
#include <cstring>

#include "src/statstore/bitstream.h"

namespace statstore {

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}
inline double BitsToDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

// Delta-of-delta codec for uint64 sequences (epoch ids, timestamps).
// Bucket layout (control prefix, zig-zagged dod payload):
//   0                -> dod == 0
//   10   + 7 bits    -> |dod| small (zig-zag < 2^7)
//   110  + 12 bits
//   1110 + 20 bits
//   1111 + 64 bits   -> anything else
class DeltaOfDeltaEncoder {
 public:
  void Append(BitWriter* w, uint64_t value) {
    if (count_ == 0) {
      w->Write(value, 64);
    } else {
      const int64_t delta =
          static_cast<int64_t>(value) - static_cast<int64_t>(prev_);
      const int64_t dod = delta - prev_delta_;
      const uint64_t zz = ZigZag(dod);
      if (dod == 0) {
        w->WriteBit(false);
      } else if (zz < (1ull << 7)) {
        w->Write(0b10, 2);
        w->Write(zz, 7);
      } else if (zz < (1ull << 12)) {
        w->Write(0b110, 3);
        w->Write(zz, 12);
      } else if (zz < (1ull << 20)) {
        w->Write(0b1110, 4);
        w->Write(zz, 20);
      } else {
        w->Write(0b1111, 4);
        w->Write(zz, 64);
      }
      prev_delta_ = delta;
    }
    prev_ = value;
    ++count_;
  }

 private:
  uint64_t prev_ = 0;
  int64_t prev_delta_ = 0;
  uint64_t count_ = 0;
};

class DeltaOfDeltaDecoder {
 public:
  bool Next(BitReader* r, uint64_t* value) {
    if (count_ == 0) {
      if (!r->Read(&prev_, 64)) return false;
    } else {
      bool b = false;
      int64_t dod = 0;
      if (!r->ReadBit(&b)) return false;
      if (b) {
        int payload_bits = 7;
        if (!r->ReadBit(&b)) return false;
        if (b) {
          payload_bits = 12;
          if (!r->ReadBit(&b)) return false;
          if (b) {
            if (!r->ReadBit(&b)) return false;
            payload_bits = b ? 64 : 20;
          }
        }
        uint64_t zz = 0;
        if (!r->Read(&zz, payload_bits)) return false;
        dod = UnZigZag(zz);
      }
      prev_delta_ += dod;
      prev_ = static_cast<uint64_t>(static_cast<int64_t>(prev_) + prev_delta_);
    }
    ++count_;
    *value = prev_;
    return true;
  }

 private:
  uint64_t prev_ = 0;
  int64_t prev_delta_ = 0;
  uint64_t count_ = 0;
};

// XOR codec for doubles. Per value:
//   0                          -> identical to previous
//   10 + meaningful bits       -> XOR fits the previous leading/length window
//   11 + 6b leading + 6b len-1 + bits -> new window
// The first value in a stream is emitted as 64 raw bits.
class XorEncoder {
 public:
  void Append(BitWriter* w, double value) {
    const uint64_t bits = DoubleBits(value);
    if (count_ == 0) {
      w->Write(bits, 64);
    } else {
      const uint64_t x = bits ^ prev_;
      if (x == 0) {
        w->WriteBit(false);
      } else {
        w->WriteBit(true);
        const int leading = CountLeading(x);  // <= 63 for nonzero x
        const int trailing = CountTrailing(x);
        if (prev_len_ > 0 && leading >= prev_leading_ &&
            trailing >= 64 - prev_leading_ - prev_len_) {
          w->WriteBit(false);
          w->Write(x >> (64 - prev_leading_ - prev_len_), prev_len_);
        } else {
          const int len = 64 - leading - trailing;
          w->WriteBit(true);
          w->Write(static_cast<uint64_t>(leading), 6);
          w->Write(static_cast<uint64_t>(len - 1), 6);
          w->Write(x >> trailing, len);
          prev_leading_ = leading;
          prev_len_ = len;
        }
      }
    }
    prev_ = bits;
    ++count_;
  }

 private:
  static int CountLeading(uint64_t x) {
    return x ? __builtin_clzll(x) : 64;
  }
  static int CountTrailing(uint64_t x) {
    return x ? __builtin_ctzll(x) : 64;
  }

  uint64_t prev_ = 0;
  int prev_leading_ = 0;
  int prev_len_ = 0;  // 0 = no window yet
  uint64_t count_ = 0;
};

class XorDecoder {
 public:
  bool Next(BitReader* r, double* value) {
    if (count_ == 0) {
      if (!r->Read(&prev_, 64)) return false;
    } else {
      bool changed = false;
      if (!r->ReadBit(&changed)) return false;
      if (changed) {
        bool new_window = false;
        if (!r->ReadBit(&new_window)) return false;
        if (new_window) {
          uint64_t leading = 0, len_minus_1 = 0;
          if (!r->Read(&leading, 6) || !r->Read(&len_minus_1, 6)) return false;
          prev_leading_ = static_cast<int>(leading);
          prev_len_ = static_cast<int>(len_minus_1) + 1;
          if (prev_leading_ + prev_len_ > 64) return false;  // corrupt
        } else if (prev_len_ == 0) {
          return false;  // window reuse before any window: corrupt
        }
        uint64_t meaningful = 0;
        if (!r->Read(&meaningful, prev_len_)) return false;
        prev_ ^= meaningful << (64 - prev_leading_ - prev_len_);
      }
    }
    ++count_;
    *value = BitsToDouble(prev_);
    return true;
  }

 private:
  uint64_t prev_ = 0;
  int prev_leading_ = 0;
  int prev_len_ = 0;
  uint64_t count_ = 0;
};

}  // namespace statstore

#endif  // SRC_STATSTORE_GORILLA_H_
