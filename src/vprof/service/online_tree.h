// Streaming variance tree for the always-on profiling service (vprofd).
//
// The batch VarianceAnalysis keeps every interval's per-node time series in
// memory, which is fine for one run but unbounded for a service that folds
// epochs forever. OnlineVarianceTree keeps only O(nodes + sibling pairs)
// state: each epoch's critical-path decomposition is computed with the batch
// machinery, then folded into decayed Welford/covariance accumulators
// (statkit/decay.h) keyed by persistent call-tree position. Node identities
// are stable across epochs, so the tree refines monotonically as the
// controller enables deeper probes.
//
// Alignment invariant: every node accumulator and every sibling-pair
// covariance accumulator carries exactly the same weight (one unit per
// folded interval, decayed uniformly per epoch). Nodes born mid-stream are
// seeded with the current weight of zeros — the time they genuinely
// contributed before existing — so the paper's Equation (2) decomposition
// stays consistent over the whole sliding window.
#ifndef SRC_VPROF_SERVICE_ONLINE_TREE_H_
#define SRC_VPROF_SERVICE_ONLINE_TREE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/statkit/decay.h"
#include "src/vprof/analysis/critical_path.h"
#include "src/vprof/analysis/variance_tree.h"
#include "src/vprof/trace.h"

namespace vprof {

struct OnlineTreeOptions {
  // Sliding-window decay, expressed as the half-life of an observation in
  // epochs: after that many folds an interval counts half. 0 = no decay
  // (the cumulative, ever-growing window).
  double decay_half_life_epochs = 0.0;

  CriticalPathOptions path_options;
};

// Point-in-time copy of the aggregated tree: plain data, safe to use while
// the tree keeps folding. Feeds factor selection via View() and exports to
// the report/JSON/Prometheus formats.
struct OnlineTreeSnapshot {
  std::vector<TreeNode> nodes;
  std::vector<double> node_mean;       // parallel to nodes (ns)
  std::vector<double> node_variance;   // parallel to nodes (ns^2)
  std::vector<SiblingCovariance> covariances;
  std::vector<std::string> function_names;

  uint64_t epochs = 0;             // epochs folded
  uint64_t intervals = 0;          // raw intervals folded (undecayed count)
  double weight = 0.0;             // decayed effective interval count
  uint64_t dropped_records = 0;    // arena-cap drops across folded traces
  uint64_t stuck_thread_epochs = 0;  // epochs whose trace had stuck threads
  uint64_t stuck_threads = 0;        // quarantined threads, summed over epochs

  // Cumulative uncovered critical-path time (ns, undecayed).
  double total_queue_wait_ns = 0.0;
  double total_blocked_wait_ns = 0.0;
  double total_descheduled_ns = 0.0;

  double overall_mean() const {
    return nodes.empty() ? 0.0 : node_mean[kRootNode];
  }
  double overall_variance() const {
    return nodes.empty() ? 0.0 : node_variance[kRootNode];
  }

  // Human-readable node label, e.g. "fil_flush" or "trx_commit(body)".
  std::string NodeLabel(NodeId id) const;
  // Root-to-node path, e.g. "run_transaction/row_sel/lock_rec_lock".
  std::string NodePath(NodeId id) const;

  // Projection for factor selection; valid while this snapshot lives.
  VarianceTreeView View() const {
    return VarianceTreeView{nodes, node_variance, covariances,
                            overall_variance()};
  }

  // Prometheus text exposition for scraping the live service: tree stats,
  // per-node gauges keyed by escaped node path, and the tracer's own health
  // (dropped records, stuck threads, uncovered critical-path time). Sorted
  // family order with HELP/TYPE lines for every family (see prom.h).
  std::string ToPromText() const;

  // Nested-tree JSON document (stats header + recursive node objects).
  std::string ToJson() const;
};

// Thread-safe: Fold runs on the harvester thread while Snapshot serves
// concurrent readers (metrics endpoints, the controller, tests).
class OnlineVarianceTree {
 public:
  explicit OnlineVarianceTree(const OnlineTreeOptions& options = {});

  // Folds one epoch's trace into the aggregate. The critical-path analysis
  // runs outside the lock; only the accumulator update is serialized.
  void Fold(const Trace& trace);

  OnlineTreeSnapshot Snapshot() const;

  uint64_t epochs() const;

 private:
  NodeId Intern(NodeId parent, FuncId func, bool is_body, double seed_weight);

  struct PairAcc {
    NodeId parent = -1;
    NodeId a = -1;
    NodeId b = -1;
    statkit::DecayedCovariance cov;
  };

  static uint64_t PairKey(NodeId a, NodeId b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  OnlineTreeOptions options_;
  double gamma_ = 1.0;  // per-epoch decay factor

  mutable std::mutex mu_;
  NodeId prev_node_count_ = 0;  // nodes_ size before the current Fold
  std::vector<TreeNode> nodes_;
  std::vector<statkit::DecayedMoments> moments_;  // parallel to nodes_
  std::vector<PairAcc> pairs_;
  std::unordered_map<uint64_t, size_t> pair_index_;  // PairKey -> pairs_ slot
  std::vector<std::string> function_names_;

  uint64_t epochs_ = 0;
  uint64_t intervals_ = 0;
  uint64_t dropped_records_ = 0;
  uint64_t stuck_thread_epochs_ = 0;
  uint64_t stuck_threads_ = 0;
  double total_queue_wait_ns_ = 0.0;
  double total_blocked_wait_ns_ = 0.0;
  double total_descheduled_ns_ = 0.0;
};

}  // namespace vprof

#endif  // SRC_VPROF_SERVICE_ONLINE_TREE_H_
