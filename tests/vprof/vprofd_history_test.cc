// Vprofd + statstore wiring: every harvested epoch lands in the durable
// history store, epoch numbering survives a daemon restart, the regression
// detector feeds MetricsText, and the snapshot flattening is stable.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/statstore/store.h"
#include "src/vprof/probe.h"
#include "src/vprof/registry.h"
#include "src/vprof/runtime.h"
#include "src/vprof/service/history.h"
#include "src/vprof/service/online_tree.h"
#include "src/vprof/service/vprofd.h"
#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

void HistoryChildWork() {
  VPROF_FUNC("vprofd_hist_child");
  volatile int x = 0;
  for (int i = 0; i < 100; ++i) {
    x = x + i;
  }
}

void HistoryRootWork() {
  VPROF_FUNC("vprofd_hist_root");
  HistoryChildWork();
}

class VprofdHistoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/vprofd_history_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    SetFunctionEnabled(RegisterFunction("vprofd_hist_root"), false);
    SetFunctionEnabled(RegisterFunction("vprofd_hist_child"), false);
    std::filesystem::remove_all(dir_);
  }

  VprofdOptions Options() {
    VprofdOptions options;
    options.root_function = "vprofd_hist_root";
    options.epoch_ns = 15'000'000;  // 15 ms
    options.enable_controller = false;
    options.history.dir = dir_;
    return options;
  }

  // Runs a daemon against a live workload until it has harvested
  // `min_epochs` epochs, then stops it and returns the epoch count.
  uint64_t RunDaemon(Vprofd* daemon, uint64_t min_epochs) {
    SetFunctionEnabled(RegisterFunction("vprofd_hist_root"), true);
    SetFunctionEnabled(RegisterFunction("vprofd_hist_child"), true);
    std::atomic<bool> stop_worker{false};
    std::thread worker([&] {
      while (!stop_worker.load(std::memory_order_acquire)) {
        const IntervalId sid = BeginInterval();
        HistoryRootWork();
        EndInterval(sid);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
    daemon->Start();
    while (daemon->epochs() < min_epochs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    daemon->Stop();
    stop_worker.store(true, std::memory_order_release);
    worker.join();
    return daemon->epochs();
  }

  std::string dir_;
};

TEST_F(VprofdHistoryTest, PersistsEveryEpochAndSurvivesRestart) {
  uint64_t first_run_epochs = 0;
  {
    Vprofd daemon(Options());
    first_run_epochs = RunDaemon(&daemon, 4);
    ASSERT_NE(daemon.history(), nullptr);
    EXPECT_EQ(daemon.history()->record_count(), first_run_epochs);
    EXPECT_EQ(daemon.history()->last_epoch(), first_run_epochs);
    EXPECT_EQ(daemon.history()->stats().append_errors, 0u);

    // The flattened snapshot streams are queryable while running.
    const std::vector<statstore::SeriesPoint> intervals =
        daemon.history()->Query("stats:intervals", 0, UINT64_MAX);
    ASSERT_EQ(intervals.size(), first_run_epochs);
    EXPECT_GT(intervals.back().value, 0.0);
    const std::vector<statstore::SeriesPoint> gaps = daemon.history()->Query(
        "health:rotation_gap_max_ns", 0, UINT64_MAX);
    ASSERT_EQ(gaps.size(), first_run_epochs);

    const std::string metrics = daemon.MetricsText();
    EXPECT_NE(metrics.find("vprofd_history_appends_total "), std::string::npos);
    EXPECT_NE(metrics.find("vprofd_history_last_epoch "), std::string::npos);
    EXPECT_NE(metrics.find("vprofd_regression_flags_total "),
              std::string::npos);
  }

  // A second daemon over the same directory extends the same epoch stream
  // instead of clashing with the persisted tail.
  Vprofd daemon(Options());
  const uint64_t second_run_epochs = RunDaemon(&daemon, 2);
  ASSERT_NE(daemon.history(), nullptr);
  EXPECT_EQ(daemon.history()->last_epoch(),
            first_run_epochs + second_run_epochs);
  EXPECT_EQ(daemon.history()->stats().append_errors, 0u);
  const std::vector<statstore::SeriesPoint> intervals =
      daemon.history()->Query("stats:intervals", 0, UINT64_MAX);
  EXPECT_EQ(intervals.size(), first_run_epochs + second_run_epochs);
  // Epochs are strictly increasing across the restart boundary.
  for (size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_GT(intervals[i].epoch, intervals[i - 1].epoch);
  }
}

TEST_F(VprofdHistoryTest, EmptyDirDisablesHistory) {
  VprofdOptions options = Options();
  options.history.dir.clear();
  Vprofd daemon(std::move(options));
  EXPECT_EQ(daemon.history(), nullptr);
  // MetricsText still renders (no history families).
  const std::string metrics = daemon.MetricsText();
  EXPECT_EQ(metrics.find("vprofd_history_appends_total"), std::string::npos);
  EXPECT_NE(metrics.find("vprofd_harvest_epochs_total"), std::string::npos);
}

// Application-published gauges (the scale-out wiring): every harvested epoch
// samples the app_gauges callback into "app:<name>" history series, and
// MetricsText exposes the live values under vprofd_app_gauge.
TEST_F(VprofdHistoryTest, AppGaugesLandInHistoryAndMetrics) {
  EXPECT_EQ(AppSeriesName("minidb.redo.commit_waits"),
            "app:minidb.redo.commit_waits");

  std::atomic<uint64_t> ticks{0};
  VprofdOptions options = Options();
  options.app_gauges = [&ticks] {
    const double t = static_cast<double>(ticks.fetch_add(1)) + 1.0;
    return std::vector<AppGauge>{{"test.shard0.mutex_waits", 10.0 * t},
                                 {"test.redo.batch_records_avg", 3.5}};
  };
  Vprofd daemon(std::move(options));
  const uint64_t epochs = RunDaemon(&daemon, 3);

  ASSERT_NE(daemon.history(), nullptr);
  const std::vector<statstore::SeriesPoint> waits = daemon.history()->Query(
      "app:test.shard0.mutex_waits", 0, UINT64_MAX);
  ASSERT_EQ(waits.size(), epochs);
  // The callback runs once per harvested epoch, in epoch order.
  for (size_t i = 1; i < waits.size(); ++i) {
    EXPECT_GT(waits[i].value, waits[i - 1].value);
  }
  const std::vector<statstore::SeriesPoint> batch = daemon.history()->Query(
      "app:test.redo.batch_records_avg", 0, UINT64_MAX);
  ASSERT_EQ(batch.size(), epochs);
  EXPECT_DOUBLE_EQ(batch.back().value, 3.5);

  // Scrape surface: one family, series-labelled samples.
  const std::string metrics = daemon.MetricsText();
  EXPECT_NE(metrics.find("# TYPE vprofd_app_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("vprofd_app_gauge{series=\"test.shard0.mutex_waits\"} "),
            std::string::npos);
  EXPECT_NE(
      metrics.find("vprofd_app_gauge{series=\"test.redo.batch_records_avg\"} "),
      std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot flattening (history.h) without a live daemon
// ---------------------------------------------------------------------------

TEST(SnapshotFlattenTest, EmitsNodeAndHealthSeries) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 1000);
  tb.Exec(0, 1, 0, 1000);
  const int root = tb.Invoke(0, "flat_root", 0, 1000, -1, 1);
  tb.Invoke(0, "flat_child", 0, 400, root, 1);
  OnlineVarianceTree tree;
  tree.Fold(tb.Build());

  HarvestHealth health;
  health.rotation_gap_last_ns = 11;
  health.rotation_gap_max_ns = 22;
  health.rotation_gap_total_ns = 33;
  const statstore::EpochSample sample =
      SampleFromSnapshot(tree.Snapshot(), 42, health);
  EXPECT_EQ(sample.epoch, 42u);

  auto value_of = [&](const std::string& series, double* out) {
    for (const statstore::SeriesValue& sv : sample.values) {
      if (sv.series == series) {
        *out = sv.value;
        return true;
      }
    }
    return false;
  };
  double v = 0.0;
  EXPECT_TRUE(value_of("stats:intervals", &v));
  EXPECT_EQ(v, 1.0);
  EXPECT_TRUE(value_of("health:rotation_gap_max_ns", &v));
  EXPECT_EQ(v, 22.0);
  EXPECT_TRUE(value_of("health:dropped_records", &v));
  EXPECT_EQ(v, 0.0);
  // Per-node streams exist for every non-root node, named by path.
  bool found_node_share = false;
  for (const statstore::SeriesValue& sv : sample.values) {
    if (sv.series.rfind("node:", 0) == 0 &&
        sv.series.find(":share") != std::string::npos) {
      found_node_share = true;
      EXPECT_GE(sv.value, 0.0);
    }
  }
  EXPECT_TRUE(found_node_share);
}

TEST(SnapshotFlattenTest, ObserveSnapshotFeedsDetector) {
  statstore::RegressionOptions opts;
  opts.warmup_epochs = 2;
  opts.k_sigma = 3.0;
  opts.sigma_floor = 0.001;
  opts.min_abs_shift = 0.01;
  statstore::RegressionDetector detector(opts);

  // Epochs 1..10: child A dominates. Epoch 11: child B takes over.
  auto fold_epoch = [](OnlineVarianceTree* tree, TimeNs a_var_step,
                       TimeNs b_var_step) {
    TraceBuilder tb;
    for (int i = 0; i < 4; ++i) {
      const TimeNs base = static_cast<TimeNs>(i) * 100000;
      const TimeNs a_end = base + 100 + a_var_step * (i % 2);
      const TimeNs b_end = a_end + 100 + b_var_step * (i % 2);
      const TimeNs end = b_end + 50;
      const IntervalId sid = static_cast<IntervalId>(i + 1);
      tb.Begin(0, sid, base).End(0, sid, end);
      tb.Exec(0, sid, base, end);
      const int txn = tb.Invoke(0, "obs_txn", base, end, -1, sid);
      tb.Invoke(0, "obs_a", base, a_end, txn, sid);
      tb.Invoke(0, "obs_b", a_end, b_end, txn, sid);
    }
    tree->Fold(tb.Build());
  };

  OnlineTreeOptions tree_opts;
  tree_opts.decay_half_life_epochs = 2.0;  // adapt fast for the test
  OnlineVarianceTree tree(tree_opts);
  int flags = 0;
  for (uint64_t epoch = 1; epoch <= 10; ++epoch) {
    fold_epoch(&tree, 1000, 0);
    flags += ObserveSnapshot(&detector, tree.Snapshot(), epoch);
  }
  EXPECT_EQ(flags, 0) << "steady decomposition must not flag";
  EXPECT_GT(detector.series_count(), 0u);

  for (uint64_t epoch = 11; epoch <= 14; ++epoch) {
    fold_epoch(&tree, 0, 1000);
    flags += ObserveSnapshot(&detector, tree.Snapshot(), epoch);
  }
  EXPECT_GT(flags, 0) << "share migration must flag";
  // The flagged series is one of the node share streams.
  const std::vector<statstore::RegressionFlag> raised = detector.flags();
  ASSERT_FALSE(raised.empty());
  EXPECT_EQ(raised.front().series.rfind("node:", 0), 0u);
}

}  // namespace
}  // namespace vprof
