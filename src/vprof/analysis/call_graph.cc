#include "src/vprof/analysis/call_graph.h"

#include <algorithm>

#include "src/vprof/registry.h"

namespace vprof {

void CallGraph::AddEdge(std::string_view caller, std::string_view callee) {
  const FuncId from = RegisterFunction(caller);
  const FuncId to = RegisterFunction(callee);
  functions_.insert(from);
  functions_.insert(to);
  std::vector<FuncId>& kids = children_[from];
  if (std::find(kids.begin(), kids.end(), to) == kids.end()) {
    kids.push_back(to);
  }
  height_cache_.clear();
}

void CallGraph::AddFunction(std::string_view name) {
  functions_.insert(RegisterFunction(name));
}

std::vector<FuncId> CallGraph::Children(FuncId func) const {
  auto it = children_.find(func);
  return it == children_.end() ? std::vector<FuncId>{} : it->second;
}

bool CallGraph::HasChildren(FuncId func) const {
  auto it = children_.find(func);
  return it != children_.end() && !it->second.empty();
}

int CallGraph::HeightRecursive(FuncId func,
                               std::unordered_set<FuncId>& on_stack) const {
  auto cached = height_cache_.find(func);
  if (cached != height_cache_.end()) {
    return cached->second;
  }
  if (!on_stack.insert(func).second) {
    return 0;  // recursion: do not grow height along a cycle
  }
  int height = 0;
  auto it = children_.find(func);
  if (it != children_.end()) {
    for (FuncId child : it->second) {
      height = std::max(height, 1 + HeightRecursive(child, on_stack));
    }
  }
  on_stack.erase(func);
  height_cache_[func] = height;
  return height;
}

int CallGraph::Height(FuncId func) const {
  std::unordered_set<FuncId> on_stack;
  return HeightRecursive(func, on_stack);
}

std::vector<FuncId> CallGraph::Functions() const {
  return std::vector<FuncId>(functions_.begin(), functions_.end());
}

std::string CallGraph::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  std::vector<FuncId> functions = Functions();
  std::sort(functions.begin(), functions.end());
  for (FuncId func : functions) {
    out += "  \"" + FunctionName(func) + "\";\n";
  }
  for (FuncId func : functions) {
    for (FuncId child : Children(func)) {
      out += "  \"" + FunctionName(func) + "\" -> \"" + FunctionName(child) +
             "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace vprof
