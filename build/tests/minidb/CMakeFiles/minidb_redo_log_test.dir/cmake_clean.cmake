file(REMOVE_RECURSE
  "CMakeFiles/minidb_redo_log_test.dir/redo_log_test.cc.o"
  "CMakeFiles/minidb_redo_log_test.dir/redo_log_test.cc.o.d"
  "minidb_redo_log_test"
  "minidb_redo_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_redo_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
