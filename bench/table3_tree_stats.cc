// Reproduces paper Table 3: statistics of the final variance tree per
// application — number of VProfiler runs, tree height, tree breadth.
//
// Paper: MySQL 37 runs / height 19 / breadth 245025; Postgres 16 / 8 /
// 16900; Apache 17 / 15 / 36. Our engines are purposely smaller codebases
// (tens of instrumentable functions, not 30K), so runs and heights are
// proportionally smaller; the comparison point is the ordering (the
// database engines need deeper trees than the web server's narrow chain)
// and that factor selection keeps the explored tree tiny relative to the
// full call graph.
#include "bench/common.h"

namespace {

void Report(const char* system, const vprof::ProfileResult& result,
            int paper_runs, int paper_height, uint64_t paper_breadth) {
  std::printf("  %-10s runs=%2d (paper %2d)   height=%2d (paper %2d)   "
              "breadth=%6llu (paper %llu)\n",
              system, result.runs, paper_runs, result.tree_height, paper_height,
              static_cast<unsigned long long>(result.tree_breadth),
              static_cast<unsigned long long>(paper_breadth));
}

}  // namespace

int main() {
  bench::PrintHeader("Table 3 — final variance tree statistics");

  {
    minidb::Engine engine(bench::MysqlMemoryResidentConfig());
    vprof::CallGraph graph;
    minidb::Engine::RegisterCallGraph(&graph);
    workload::TpccDriver driver(&engine, bench::TpccQuick(4, 250));
    driver.Run();
    vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
    vprof::ProfileOptions options;
    options.top_k = 5;
    Report("minidb", profiler.Run(options), 37, 19, 245025);
  }
  {
    minipg::PgEngine engine(bench::PostgresConfig(1));
    vprof::CallGraph graph;
    minipg::PgEngine::RegisterCallGraph(&graph);
    workload::TpccDriver driver(nullptr, bench::TpccQuick(4, 250));
    const auto run = [&] {
      driver.RunWith(
          [&engine](const minidb::TxnRequest& r) { return engine.Execute(r); },
          8);
    };
    run();
    vprof::Profiler profiler("exec_simple_query", &graph, run);
    vprof::ProfileOptions options;
    options.top_k = 5;
    Report("minipg", profiler.Run(options), 16, 8, 16900);
  }
  {
    httpd::HttpServer server(bench::ApacheConfig(false));
    vprof::CallGraph graph;
    httpd::HttpServer::RegisterCallGraph(&graph);
    workload::AbOptions ab;
    ab.clients = 8;
    ab.requests_per_client = 250;
    workload::AbDriver driver(&server, ab);
    driver.Run();
    vprof::Profiler profiler("process_request", &graph, [&] { driver.Run(); });
    vprof::ProfileOptions options;
    options.top_k = 5;
    Report("httpd", profiler.Run(options), 17, 15, 36);
    server.Shutdown();
  }
  return 0;
}
