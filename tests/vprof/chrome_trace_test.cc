#include "src/vprof/analysis/chrome_trace.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

Trace SampleTrace() {
  TraceBuilder tb;
  tb.Begin(0, 1, 100).End(0, 1, 900);
  tb.Exec(0, 1, 100, 400).Blocked(0, 1, 400, 700, 1, 700).Exec(0, 1, 700, 900);
  const int root = tb.Invoke(0, "ct_root", 100, 880, -1, 1);
  tb.Invoke(0, "ct_child", 150, 380, root, 1);
  return tb.Build();
}

TEST(ChromeTraceTest, ContainsFunctionEvents) {
  const std::string json = ToChromeTraceJson(SampleTrace());
  EXPECT_NE(json.find("\"ct_root\""), std::string::npos);
  EXPECT_NE(json.find("\"ct_child\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceTest, ContainsBlockedSegmentWithWaker) {
  const std::string json = ToChromeTraceJson(SampleTrace());
  EXPECT_NE(json.find("\"blocked\""), std::string::npos);
  EXPECT_NE(json.find("\"waker\":1"), std::string::npos);
}

TEST(ChromeTraceTest, ContainsIntervalMarkers) {
  const std::string json = ToChromeTraceJson(SampleTrace());
  EXPECT_NE(json.find("\"interval 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
}

TEST(ChromeTraceTest, OptionsSuppressSections) {
  ChromeTraceOptions options;
  options.include_segments = false;
  options.include_intervals = false;
  const std::string json = ToChromeTraceJson(SampleTrace(), options);
  EXPECT_EQ(json.find("\"blocked\""), std::string::npos);
  EXPECT_EQ(json.find("\"interval 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ct_root\""), std::string::npos);
}

TEST(ChromeTraceTest, BalancedJsonBrackets) {
  const std::string json = ToChromeTraceJson(SampleTrace());
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') {
      in_string = !in_string;
    }
    if (!in_string) {
      if (c == '{' || c == '[') {
        ++depth;
      }
      if (c == '}' || c == ']') {
        --depth;
      }
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ChromeTraceTest, WriteToFileRoundTrips) {
  const std::string path = std::string(::testing::TempDir()) + "/ct.json";
  ASSERT_TRUE(WriteChromeTrace(SampleTrace(), path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[16] = {0};
  ASSERT_GT(std::fread(buffer, 1, sizeof(buffer) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(buffer[0], '{');
}

TEST(ChromeTraceTest, EscapesSpecialCharacters) {
  TraceBuilder tb;
  tb.Begin(0, 1, 0).End(0, 1, 10);
  tb.Invoke(0, "weird\"name\\x", 0, 5, -1, 1);
  const std::string json = ToChromeTraceJson(tb.Build());
  EXPECT_NE(json.find("weird\\\"name\\\\x"), std::string::npos);
}

}  // namespace
}  // namespace vprof
