file(REMOVE_RECURSE
  "CMakeFiles/statkit_distributions_test.dir/distributions_test.cc.o"
  "CMakeFiles/statkit_distributions_test.dir/distributions_test.cc.o.d"
  "statkit_distributions_test"
  "statkit_distributions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
