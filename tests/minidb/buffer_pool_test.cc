#include "src/minidb/buffer_pool.h"

#include <thread>

#include <gtest/gtest.h>

namespace minidb {
namespace {

simio::DiskConfig FastDisk() {
  simio::DiskConfig config;
  config.read_mu = 0.5;
  config.read_sigma = 0.05;
  config.write_mu = 0.5;
  config.write_sigma = 0.05;
  config.serialize_access = false;
  return config;
}

TEST(BufferPoolTest, MissThenHit) {
  simio::Disk disk(FastDisk());
  BufferPool pool(8, BufferPolicy::kBlockingMutex, 64, &disk);
  pool.GetPage(1, false);
  pool.GetPage(1, false);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

TEST(BufferPoolTest, CapacityEnforcedByEviction) {
  simio::Disk disk(FastDisk());
  BufferPool pool(4, BufferPolicy::kBlockingMutex, 64, &disk);
  for (PageId p = 0; p < 10; ++p) {
    pool.GetPage(p, false);
  }
  EXPECT_LE(pool.resident_pages(), 4u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 10u);
  EXPECT_EQ(stats.clean_evictions + stats.dirty_evictions, 6u);
  EXPECT_TRUE(pool.CheckInvariants());
}

TEST(BufferPoolTest, DirtyVictimsWrittenBack) {
  simio::Disk disk(FastDisk());
  BufferPool pool(2, BufferPolicy::kBlockingMutex, 64, &disk);
  pool.GetPage(1, true);  // dirty
  pool.GetPage(2, true);  // dirty
  pool.GetPage(3, false);  // evicts LRU (page 1, dirty)
  const auto stats = pool.stats();
  EXPECT_EQ(stats.dirty_evictions, 1u);
  EXPECT_GE(disk.writes(), 1u);
}

TEST(BufferPoolTest, LruKeepsHotPages) {
  simio::Disk disk(FastDisk());
  BufferPool pool(3, BufferPolicy::kBlockingMutex, 64, &disk);
  pool.GetPage(1, false);
  pool.GetPage(2, false);
  pool.GetPage(3, false);
  pool.GetPage(1, false);  // 1 now MRU
  pool.GetPage(4, false);  // evicts 2 (LRU)
  pool.GetPage(1, false);  // still resident: hit
  const auto stats = pool.stats();
  EXPECT_EQ(stats.misses, 4u);  // 1,2,3,4
  EXPECT_EQ(stats.hits, 2u);    // both re-touches of 1
}

TEST(BufferPoolTest, LazyLruSkipsMoveWhenMutexBusy) {
  // Slow dirty write-backs: an evicting thread holds the pool mutex for
  // ~1ms at a time (the single-page-flush path), so the hot-path bounded
  // try-lock must observe it busy and skip.
  simio::DiskConfig slow = FastDisk();
  slow.write_mu = 7.0;  // ~1.1ms median write-back, held under the pool mutex
  slow.write_sigma = 0.05;
  simio::Disk disk(slow);
  BufferPool pool(8, BufferPolicy::kLazyLruUpdate, 2, &disk);
  pool.GetPage(1, false);  // resident

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    PageId p = 100;
    while (!stop.load()) {
      pool.GetPage(p++, true);  // dirty misses: evictions write back under
                                // the pool mutex
    }
  });
  // Wait until the churn thread is actually missing (single-core scheduling).
  const uint64_t reads_at_start = disk.reads();
  for (int i = 0; i < 1000 && disk.reads() < reads_at_start + 3; ++i) {
    simio::SleepUs(1000);
  }
  uint64_t skipped = 0;
  for (int i = 0; i < 2000 && skipped == 0; ++i) {
    pool.GetPage(1, false);
    skipped = pool.stats().lru_moves_skipped;
    simio::SleepUs(200);  // let the churn thread reacquire the mutex
  }
  stop.store(true);
  churn.join();
  EXPECT_GT(skipped, 0u);
}

TEST(BufferPoolTest, SpinLockPolicyStillCorrect) {
  simio::Disk disk(FastDisk());
  BufferPool pool(16, BufferPolicy::kSpinLock, 64, &disk);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 500; ++i) {
        pool.GetPage(static_cast<PageId>((t * 500 + i) % 32), i % 2 == 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(pool.CheckInvariants());
  EXPECT_LE(pool.resident_pages(), 16u);
}

TEST(BufferPoolTest, ConcurrentMixedWorkloadKeepsInvariants) {
  simio::Disk disk(FastDisk());
  BufferPool pool(32, BufferPolicy::kBlockingMutex, 64, &disk);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 1000; ++i) {
        pool.GetPage(static_cast<PageId>((i * 7 + t * 13) % 100), i % 3 == 0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(pool.CheckInvariants());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
}

}  // namespace
}  // namespace minidb
