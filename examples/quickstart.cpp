// Quickstart: profile a tiny application with VProfiler in ~60 lines.
//
// The app handles "requests" that parse, look something up, and perform an
// I/O call whose latency is occasionally terrible. VProfiler finds the
// culprit automatically:
//
//   1. instrument functions with VPROF_FUNC("name");
//   2. mark each semantic interval with BeginInterval/EndInterval;
//   3. declare the static call graph;
//   4. hand the Profiler a workload callback and read the report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/simio/disk.h"
#include "src/statkit/rng.h"
#include "src/vprof/analysis/profiler.h"
#include "src/vprof/probe.h"

namespace {

statkit::Rng g_rng(2024);

void Parse() {
  VPROF_FUNC("parse");
  simio::SleepUs(80.0);  // steady work: no variance here
}

void Lookup() {
  VPROF_FUNC("lookup");
  simio::SleepUs(120.0);  // steady work
}

void FlakyIo() {
  VPROF_FUNC("flaky_io");
  // 20% of calls hit a slow path -- the latency-variance culprit.
  simio::SleepUs(g_rng.NextBool(0.2) ? 2200.0 : 150.0);
}

void Execute() {
  VPROF_FUNC("execute");
  Lookup();
  FlakyIo();
}

void HandleRequest() {
  VPROF_FUNC("handle_request");
  const vprof::IntervalId sid = vprof::BeginInterval();
  Parse();
  Execute();
  vprof::EndInterval(sid);
}

}  // namespace

int main() {
  // The static call graph drives iterative refinement (which functions to
  // instrument next) and the specificity ranking.
  vprof::CallGraph graph;
  graph.AddEdge("handle_request", "parse");
  graph.AddEdge("handle_request", "execute");
  graph.AddEdge("execute", "lookup");
  graph.AddEdge("execute", "flaky_io");

  vprof::Profiler profiler("handle_request", &graph, [] {
    for (int i = 0; i < 200; ++i) {
      HandleRequest();
    }
  });

  const vprof::ProfileResult result = profiler.Run();
  std::printf("%s\n", result.Report().c_str());
  std::printf("VProfiler needed %d run(s) and instrumented %zu of the "
              "application's functions.\n",
              result.runs, result.instrumented.size());
  std::printf("Expected culprit: flaky_io (it should top the ranking above).\n");
  return 0;
}
