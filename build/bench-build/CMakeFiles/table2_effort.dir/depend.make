# Empty dependencies file for table2_effort.
# This may be replaced when dependencies are built.
