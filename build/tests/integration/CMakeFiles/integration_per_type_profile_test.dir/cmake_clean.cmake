file(REMOVE_RECURSE
  "CMakeFiles/integration_per_type_profile_test.dir/per_type_profile_test.cc.o"
  "CMakeFiles/integration_per_type_profile_test.dir/per_type_profile_test.cc.o.d"
  "integration_per_type_profile_test"
  "integration_per_type_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_per_type_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
