// Calibrated TSC-based fast clock for the probe hot path.
//
// Reading std::chrono::steady_clock costs a vDSO call plus a division on
// every sample; a probe pays it twice. On x86-64 with an invariant TSC
// (constant_tsc + nonstop_tsc, standard on anything built this decade) the
// cycle counter is a monotonic clock already, so we read it directly with
// rdtsc and convert ticks to nanoseconds with a fixed-point multiplier
// calibrated once against steady_clock at startup. When the invariant TSC is
// unavailable (non-x86, or an exotic hypervisor that masks the CPUID bit) the
// same entry points transparently fall back to steady_clock, so callers never
// branch on the platform.
//
// All mutable state is relaxed atomics: plain loads/stores on x86, and clean
// under -fsanitize=thread. Cross-thread ordering of epoch resets is provided
// by the runtime's tracing handshake, not by this clock.
#ifndef SRC_VPROF_FASTCLOCK_H_
#define SRC_VPROF_FASTCLOCK_H_

#include <cstdint>

#include "src/vprof/types.h"

namespace vprof {
namespace fastclock {

// True when the invariant-TSC fast path is active.
bool UsingTsc();

// Estimated tick rate in GHz (0 on the chrono fallback). For reporting only.
double TicksPerNs();

// Nanoseconds since the last ResetEpoch() (or since startup calibration).
// Safe to call from any thread at any time, including before main().
TimeNs NowNs();

// Re-anchors NowNs() to zero. Called by StartTracing while all recording
// threads are quiescent, so runs report run-relative timestamps.
void ResetEpoch();

}  // namespace fastclock
}  // namespace vprof

#endif  // SRC_VPROF_FASTCLOCK_H_
