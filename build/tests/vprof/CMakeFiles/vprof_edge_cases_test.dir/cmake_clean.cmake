file(REMOVE_RECURSE
  "CMakeFiles/vprof_edge_cases_test.dir/sync_timeout_test.cc.o"
  "CMakeFiles/vprof_edge_cases_test.dir/sync_timeout_test.cc.o.d"
  "vprof_edge_cases_test"
  "vprof_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
