file(REMOVE_RECURSE
  "../bench/table4_mysql_sources"
  "../bench/table4_mysql_sources.pdb"
  "CMakeFiles/table4_mysql_sources.dir/table4_mysql_sources.cc.o"
  "CMakeFiles/table4_mysql_sources.dir/table4_mysql_sources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_mysql_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
