# CMake generated Testfile for 
# Source directory: /root/repo/tests/minipg
# Build directory: /root/repo/build/tests/minipg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(minipg_wal_test "/root/repo/build/tests/minipg/minipg_wal_test")
set_tests_properties(minipg_wal_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minipg/CMakeLists.txt;1;vp_add_test;/root/repo/tests/minipg/CMakeLists.txt;0;")
add_test(minipg_predicate_locks_test "/root/repo/build/tests/minipg/minipg_predicate_locks_test")
set_tests_properties(minipg_predicate_locks_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minipg/CMakeLists.txt;2;vp_add_test;/root/repo/tests/minipg/CMakeLists.txt;0;")
add_test(minipg_engine_test "/root/repo/build/tests/minipg/minipg_engine_test")
set_tests_properties(minipg_engine_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/minipg/CMakeLists.txt;3;vp_add_test;/root/repo/tests/minipg/CMakeLists.txt;0;")
