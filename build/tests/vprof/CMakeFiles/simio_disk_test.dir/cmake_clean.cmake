file(REMOVE_RECURSE
  "CMakeFiles/simio_disk_test.dir/simio_test.cc.o"
  "CMakeFiles/simio_disk_test.dir/simio_test.cc.o.d"
  "simio_disk_test"
  "simio_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simio_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
