file(REMOVE_RECURSE
  "CMakeFiles/profile_httpd.dir/profile_httpd.cpp.o"
  "CMakeFiles/profile_httpd.dir/profile_httpd.cpp.o.d"
  "profile_httpd"
  "profile_httpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
