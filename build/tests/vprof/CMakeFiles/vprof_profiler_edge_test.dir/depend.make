# Empty dependencies file for vprof_profiler_edge_test.
# This may be replaced when dependencies are built.
