// Reproduces paper Figure 3: VProfiler's online profiling overhead as the
// number of instrumented children under a profiled function grows from 1 to
// 500, measured on the TPC-C workload (latency and throughput overhead vs.
// an uninstrumented run). Also reproduces the Section 4.1 comparison against
// a DTrace-style binary tracer, which the paper reports to be 10-20x more
// expensive.
//
// Paper: VProfiler overhead stays below 14% in both latency and throughput
// across the sweep.
#include <string>

#include "bench/common.h"
#include "src/vprof/full_tracer.h"
#include "src/vprof/probe.h"

namespace {

// The "function with N children": each transaction executes the wrapper plus
// N short child functions, exactly the shape the paper instruments.
std::vector<vprof::FuncId> g_children;
vprof::FuncId g_wrapper = vprof::kInvalidFunc;

void ChildWork() {
  // ~300ns of real work per child, so instrumented work dominates the probe
  // itself, as in a real codebase.
  volatile uint64_t h = 1469598103934665603ull;
  for (int i = 0; i < 40; ++i) {
    h = (h ^ static_cast<uint64_t>(i)) * 1099511628211ull;
  }
}

void RunChildren(int count) {
  vprof::ScopedProbe wrapper(g_wrapper);
  for (int i = 0; i < count; ++i) {
    vprof::ScopedProbe probe(g_children[static_cast<size_t>(i)]);
    ChildWork();
  }
}

struct RunOutcome {
  double mean_latency_ms = 0.0;
  double throughput = 0.0;
};

RunOutcome RunWorkload(minidb::Engine* engine, int children, int txns) {
  // Single connection: lock waits and group-commit queueing would otherwise
  // add workload noise larger than the probe overhead being measured.
  workload::TpccOptions options = bench::TpccQuick(1, txns);
  workload::TpccDriver driver(nullptr, options);
  const auto result = driver.RunWith(
      [&](const minidb::TxnRequest& request) {
        RunChildren(children);
        return engine->Execute(request).committed;
      },
      engine->config().warehouses);
  RunOutcome outcome;
  outcome.mean_latency_ms = statkit::Summarize(result.latencies_ns).mean / 1e6;
  outcome.throughput = result.throughput_tps;
  return outcome;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 3 — profiling overhead vs number of children");

  g_wrapper = vprof::RegisterFunction("fig3_wrapper");
  for (int i = 0; i < 500; ++i) {
    g_children.push_back(
        vprof::RegisterFunction("fig3_child_" + std::to_string(i)));
  }

  // Low-noise configuration: calm disks, no contention — the workload's own
  // latency variance must be small relative to the probe overhead being
  // measured.
  minidb::EngineConfig config = bench::MysqlMemoryResidentConfig();
  config.warehouses = 8;
  config.log_disk.fsync_sigma = 0.05;
  config.log_disk.fsync_spike_prob = 0.0;
  config.data_disk.read_sigma = 0.05;
  minidb::Engine engine(config);
  const int kTxns = 1200;
  RunWorkload(&engine, 500, kTxns);  // full-length warm-up: populate the pool

  // Traced warm-up: first-run tracing costs (buffer growth, owner-map
  // population) must not be charged to the first measured point.
  vprof::SetFunctionEnabled(g_wrapper, true);
  vprof::StartTracing();
  RunWorkload(&engine, 500, 200);
  vprof::StopTracing();
  vprof::DisableAllFunctions();

  // Baseline: tracing fully disabled (probes are a relaxed-load no-op).
  const RunOutcome base = RunWorkload(&engine, 500, kTxns);
  std::printf("  baseline (no tracing): mean=%.3f ms, %.0f tps\n\n",
              base.mean_latency_ms, base.throughput);
  std::printf("  %-10s %-18s %-18s\n", "children", "latency overhead",
              "throughput overhead");

  for (int children : {1, 10, 50, 100, 200, 500}) {
    vprof::DisableAllFunctions();
    vprof::SetFunctionEnabled(g_wrapper, true);
    for (int i = 0; i < children; ++i) {
      vprof::SetFunctionEnabled(g_children[static_cast<size_t>(i)], true);
    }
    vprof::StartTracing();
    const RunOutcome traced = RunWorkload(&engine, 500, kTxns);
    vprof::StopTracing();
    const double latency_overhead =
        (traced.mean_latency_ms - base.mean_latency_ms) / base.mean_latency_ms *
        100.0;
    const double throughput_overhead =
        (base.throughput - traced.throughput) / base.throughput * 100.0;
    std::printf("  %-10d %6.1f%%            %6.1f%%\n", children,
                latency_overhead, throughput_overhead);
  }
  vprof::DisableAllFunctions();
  std::printf("  paper: all points below 14%% overhead\n");

  // DTrace-style comparison: every probe takes the slow global-lock +
  // symbol-hash path regardless of selection.
  vprof::EnableFullTrace(true);
  vprof::StartTracing();
  const RunOutcome full = RunWorkload(&engine, 500, kTxns);
  vprof::StopTracing();
  vprof::EnableFullTrace(false);
  const auto stats = vprof::GetFullTracerStats();
  const double full_latency_overhead =
      (full.mean_latency_ms - base.mean_latency_ms) / base.mean_latency_ms *
      100.0;
  std::printf("\n  DTrace-style full tracer: latency overhead %.1f%% "
              "(distinct functions traced: %llu)\n",
              full_latency_overhead,
              static_cast<unsigned long long>(stats.distinct_functions));
  std::printf("  paper: binary-injection tracing costs 10-20x VProfiler's "
              "source-level probes\n");
  return 0;
}
