file(REMOVE_RECURSE
  "CMakeFiles/vprof_registry_test.dir/registry_test.cc.o"
  "CMakeFiles/vprof_registry_test.dir/registry_test.cc.o.d"
  "vprof_registry_test"
  "vprof_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
