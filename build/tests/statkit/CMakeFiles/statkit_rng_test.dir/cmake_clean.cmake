file(REMOVE_RECURSE
  "CMakeFiles/statkit_rng_test.dir/rng_test.cc.o"
  "CMakeFiles/statkit_rng_test.dir/rng_test.cc.o.d"
  "statkit_rng_test"
  "statkit_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statkit_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
