// Crash-recovery property tests for the redo log (ISSUE: fault model).
//
// Invariants under test:
//   * kEager: an LSN acknowledged by CommitUpTo() == kOk is never lost, no
//     matter where in the commit path the crash is injected.
//   * kLazyFlush / kLazyWrite: recovery restores at least the flushed
//     watermark observed at crash time (the loss window is exactly the
//     un-flushed tail, as documented).
//   * Torn tails are detected by checksum and truncated, never replayed.
#include "src/minidb/redo_log.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/minidb/config.h"
#include "src/simio/disk.h"

namespace minidb {
namespace {

simio::DiskConfig FastDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.1;
  config.write_mu = 0.1;
  config.fsync_mu = 0.1;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 1.0;
  config.fault_scope = scope;
  config.seed = 11;
  return config;
}

class RedoCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
  void TearDown() override {
    fault::DeactivateAll();
    fault::ResetCounters();
  }
};

TEST_F(RedoCrashTest, ChecksumDetectsHeaderCorruption) {
  const uint32_t good = LogRecordChecksum(4096, 128);
  EXPECT_NE(good, LogRecordChecksum(4097, 128));
  EXPECT_NE(good, LogRecordChecksum(4096, 129));
}

// kEager: every acked commit survives a crash injected at each commit-path
// failpoint.
TEST_F(RedoCrashTest, EagerNeverLosesAckedLsnAtAnyCrashPoint) {
  const char* kCrashPoints[] = {"redo/crash_before_write",
                                "redo/crash_after_write",
                                "redo/crash_mid_batch",
                                "redo/crash_after_fsync"};
  for (const char* point : kCrashPoints) {
    SCOPED_TRACE(point);
    simio::Disk disk(FastDisk("redo_eager_crash"));
    RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6);
    log.set_crash_seed(99);

    // Ack a few commits while healthy.
    uint64_t last_acked = 0;
    for (int i = 0; i < 5; ++i) {
      const uint64_t lsn = log.Append(100);
      ASSERT_NE(lsn, 0u);
      if (log.CommitUpTo(lsn) == LogStatus::kOk) {
        last_acked = lsn;
      }
    }
    ASSERT_GT(last_acked, 0u);

    // Arm the crash point; the next commit crashes the log somewhere in its
    // write+fsync path.
    fault::Activate(point, fault::Trigger::OneShot());
    const uint64_t doomed = log.Append(100);
    ASSERT_NE(doomed, 0u);
    const LogStatus status = log.CommitUpTo(doomed);
    EXPECT_EQ(status, LogStatus::kCrashed);
    EXPECT_TRUE(log.crashed());
    // If the commit crashed after the fsync, the record IS durable — the
    // invariant is one-way: ack implies durable, never the reverse.
    if (std::string(point) == "redo/crash_after_fsync") {
      last_acked = doomed;
    }
    fault::Deactivate(point);

    // While crashed, the log refuses work.
    EXPECT_EQ(log.Append(50), 0u);
    EXPECT_EQ(log.CommitUpTo(last_acked), LogStatus::kCrashed);

    const RecoveryResult recovered = log.Recover();
    EXPECT_FALSE(log.crashed());
    EXPECT_GE(recovered.recovered_lsn, last_acked)
        << "acked LSN lost across crash at " << point;
    EXPECT_EQ(log.flushed_lsn(), recovered.recovered_lsn);

    // The log is usable again after recovery.
    const uint64_t fresh = log.Append(64);
    ASSERT_NE(fresh, 0u);
    EXPECT_GT(fresh, recovered.recovered_lsn);
    EXPECT_EQ(log.CommitUpTo(fresh), LogStatus::kOk);
  }
}

// Lazy policies: recovery restores at least the flushed watermark observed
// before the crash; everything acked-but-unflushed is the documented loss
// window.
TEST_F(RedoCrashTest, LazyPoliciesLoseAtMostTheUnflushedWindow) {
  for (const FlushPolicy policy :
       {FlushPolicy::kLazyFlush, FlushPolicy::kLazyWrite}) {
    SCOPED_TRACE(static_cast<int>(policy));
    simio::Disk disk(FastDisk("redo_lazy_crash"));
    // Short flusher period so some records do become durable.
    RedoLog log(policy, &disk, /*flusher_period_us=*/2000.0);

    uint64_t highest_appended = 0;
    for (int i = 0; i < 50; ++i) {
      const uint64_t lsn = log.Append(80);
      ASSERT_NE(lsn, 0u);
      EXPECT_EQ(log.CommitUpTo(lsn), LogStatus::kOk);  // lazy ack
      highest_appended = lsn;
      if (i % 10 == 9) {
        simio::SleepUs(4000.0);  // let the background flusher run
      }
    }
    const uint64_t flushed_before_crash = log.flushed_lsn();
    log.Crash(/*seed=*/1234);
    EXPECT_TRUE(log.crashed());

    const RecoveryResult recovered = log.Recover();
    // Never recover less than what was durably flushed...
    EXPECT_GE(recovered.recovered_lsn, flushed_before_crash);
    // ...and never claim more than was ever appended.
    EXPECT_LE(recovered.recovered_lsn, highest_appended);
    EXPECT_GT(recovered.recovered_lsn, 0u);  // flusher ran at least once
  }
}

// A crash with written-but-unsynced records produces a torn tail that
// recovery detects via checksum and truncates deterministically.
TEST_F(RedoCrashTest, TornTailIsDetectedAndTruncatedDeterministically) {
  auto run = [](uint64_t crash_seed) {
    simio::Disk disk(FastDisk("redo_torn_crash"));
    RedoLog log(FlushPolicy::kLazyFlush, &disk, /*flusher_period_us=*/1e6);
    // kLazyFlush commit path writes to the device but never fsyncs, so every
    // record is written-but-at-risk.
    for (int i = 0; i < 20; ++i) {
      const uint64_t lsn = log.Append(100);
      EXPECT_EQ(log.CommitUpTo(lsn), LogStatus::kOk);
    }
    EXPECT_EQ(log.device_record_count(), 20u);
    EXPECT_EQ(log.durable_record_count(), 0u);
    log.Crash(crash_seed);
    return log.Recover();
  };

  const RecoveryResult a = run(77);
  const RecoveryResult b = run(77);
  // Same seed: identical survivor prefix and identical truncation.
  EXPECT_EQ(a.recovered_lsn, b.recovered_lsn);
  EXPECT_EQ(a.records_recovered, b.records_recovered);
  EXPECT_EQ(a.torn_truncated, b.torn_truncated);
  EXPECT_EQ(a.records_lost, b.records_lost);
  EXPECT_LE(a.records_recovered, 20u);
  // Accounting: survivors + lost covers every record.
  EXPECT_EQ(a.records_recovered + a.records_lost, 20u);
}

// A torn disk write (short transfer) corrupts the checksum of the record
// crossing the tear point even without a crash-failpoint: recovery truncates
// there.
TEST_F(RedoCrashTest, ShortDiskWriteYieldsTornRecordOnRecovery) {
  simio::Disk disk(FastDisk("redo_shortwrite"));
  RedoLog log(FlushPolicy::kLazyFlush, &disk, /*flusher_period_us=*/1e6);
  // First batch lands intact.
  uint64_t intact_lsn = log.Append(600);
  EXPECT_EQ(log.CommitUpTo(intact_lsn), LogStatus::kOk);
  // Second batch suffers a torn write: only a prefix of its bytes transfer.
  {
    fault::ScopedFailpoint fp("redo_shortwrite/torn_write",
                              fault::Trigger::Always());
    for (int i = 0; i < 4; ++i) {
      log.Append(600);
    }
    EXPECT_EQ(log.CommitUpTo(log.next_lsn() - 1), LogStatus::kOk);
  }
  log.Crash(/*seed=*/5);
  const RecoveryResult recovered = log.Recover();
  // The intact first record can survive; nothing past the tear ever can.
  EXPECT_LT(recovered.recovered_lsn, log.next_lsn());
  EXPECT_LE(recovered.records_recovered, 5u);

  // Regardless of where the tear fell, the log still works.
  const uint64_t fresh = log.Append(32);
  ASSERT_NE(fresh, 0u);
  EXPECT_EQ(log.CommitUpTo(fresh), LogStatus::kOk);
}

// Disk-level write errors (not crashes) are retryable: the batch returns to
// the buffer and a later commit lands it.
TEST_F(RedoCrashTest, WriteErrorIsRetryableWithoutLoss) {
  simio::Disk disk(FastDisk("redo_ioerr"));
  RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6);
  const uint64_t lsn = log.Append(100);
  {
    fault::ScopedFailpoint fp("redo_ioerr/write_error",
                              fault::Trigger::OneShot());
    EXPECT_EQ(log.CommitUpTo(lsn), LogStatus::kIoError);
  }
  EXPECT_FALSE(log.crashed());
  EXPECT_EQ(log.CommitUpTo(lsn), LogStatus::kOk);  // retry succeeds
  EXPECT_EQ(log.flushed_lsn(), lsn);
  EXPECT_EQ(log.stats().io_errors, 1u);
}

// fsyncgate regression: a FAILED fsync is not retryable. The kernel dropped
// the unsynced window, so the log must wedge — were it to stay open, the
// next (successful) fsync would silently acknowledge commits whose records
// never reached stable storage.
TEST_F(RedoCrashTest, FailedFsyncWedgesInsteadOfSilentlyAcking) {
  simio::Disk disk(FastDisk("redo_wedge"));
  RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6);
  const uint64_t lsn = log.Append(100);
  ASSERT_EQ(log.CommitUpTo(lsn), LogStatus::kOk);  // durable baseline

  const uint64_t lsn2 = log.Append(100);
  {
    fault::ScopedFailpoint fp("redo_wedge/fsync_error",
                              fault::Trigger::OneShot());
    EXPECT_EQ(log.CommitUpTo(lsn2), LogStatus::kWedged);
  }
  EXPECT_TRUE(log.wedged());
  // The failpoint is gone — a bare retry would find a working fsync. The
  // wedge must keep refusing anyway: lsn2's record no longer exists on the
  // device, so no commit depending on the failed window may ever be acked.
  EXPECT_EQ(log.CommitUpTo(lsn2), LogStatus::kWedged);
  EXPECT_EQ(log.Append(64), 0u);  // appends refused while wedged
  EXPECT_EQ(log.stats().wedges, 1u);

  // Recovery reopens at the durable prefix: the first commit survives, the
  // wedged window does not — and was never acknowledged.
  const RecoveryResult recovered = log.Recover();
  EXPECT_FALSE(log.wedged());
  EXPECT_EQ(recovered.recovered_lsn, lsn);
  EXPECT_LT(recovered.recovered_lsn, lsn2);

  const uint64_t fresh = log.Append(80);
  ASSERT_NE(fresh, 0u);
  EXPECT_EQ(log.CommitUpTo(fresh), LogStatus::kOk);
}

// Commits already waiting inside the eager group-commit protocol observe an
// injected crash instead of hanging.
TEST_F(RedoCrashTest, EagerWaitersWakeOnCrash) {
  simio::Disk disk(FastDisk("redo_waiters"));
  RedoLog log(FlushPolicy::kEager, &disk, /*flusher_period_us=*/1e6);
  log.set_crash_seed(3);
  fault::Activate("redo/crash_before_write", fault::Trigger::OneShot());
  std::vector<std::thread> committers;
  std::atomic<int> crashed_acks{0};
  for (int t = 0; t < 4; ++t) {
    committers.emplace_back([&] {
      const uint64_t lsn = log.Append(100);
      if (lsn == 0 || log.CommitUpTo(lsn) == LogStatus::kCrashed) {
        crashed_acks.fetch_add(1);
      }
    });
  }
  for (auto& t : committers) {
    t.join();
  }
  fault::Deactivate("redo/crash_before_write");
  EXPECT_TRUE(log.crashed());
  EXPECT_EQ(crashed_acks.load(), 4);  // nobody hung, nobody got a false ack
  const RecoveryResult recovered = log.Recover();
  EXPECT_EQ(recovered.recovered_lsn, 0u);  // nothing was ever durable
}

}  // namespace
}  // namespace minidb
