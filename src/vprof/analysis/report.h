// Human-readable report rendering for variance analyses and profiles:
// ranked factor tables, annotated call trees, wait-time breakdowns, and
// latency summaries. Used by the bench harnesses, the examples, and any
// downstream tool embedding VProfiler.
#ifndef SRC_VPROF_ANALYSIS_REPORT_H_
#define SRC_VPROF_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/analysis/variance_tree.h"
#include "src/vprof/trace.h"

namespace vprof {

// Ranked factor table, one row per factor with contribution percentages.
std::string FormatFactorTable(const std::vector<Factor>& factors,
                              const std::vector<std::string>& function_names,
                              size_t max_rows = 10,
                              double min_contribution = 0.005);

// ASCII rendering of the variance tree: indented nodes with per-node mean
// time and contribution to the overall variance. Nodes below
// `min_contribution` and with mean below `min_mean_ns` are pruned.
std::string FormatCallTree(const VarianceAnalysis& analysis,
                           double min_contribution = 0.001,
                           double min_mean_ns = 100.0);

// Where interval time went that no instrumented function covered.
std::string FormatWaitBreakdown(const VarianceAnalysis& analysis);

// Mean / variance / percentiles of the interval latencies.
std::string FormatLatencySummary(const VarianceAnalysis& analysis);

// Capture-quality caveats for a trace: threads quarantined because they
// failed to quiesce at StopTracing, and records lost to the arena cap.
// Empty string when the trace is complete, so callers can append it
// unconditionally.
std::string FormatTraceHealth(const Trace& trace);

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_REPORT_H_
