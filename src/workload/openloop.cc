#include "src/workload/openloop.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <unordered_map>

#include "src/net/socket.h"

namespace workload {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<int64_t> GenerateInterArrivalsNs(const ArrivalConfig& config,
                                             size_t count, uint64_t seed) {
  std::vector<int64_t> gaps;
  gaps.reserve(count);
  std::mt19937_64 rng(seed);

  if (config.process == ArrivalProcess::kPoisson) {
    std::exponential_distribution<double> exp_gap(config.rate_per_sec / 1e9);
    for (size_t i = 0; i < count; ++i) {
      gaps.push_back(
          std::max<int64_t>(1, static_cast<int64_t>(exp_gap(rng))));
    }
    return gaps;
  }

  // Two-state MMPP. Solve the calm rate so the long-run mean is
  // rate_per_sec:  rate = f*m*rc + (1-f)*rc  =>  rc = rate / (1 - f + f*m).
  const double f = std::clamp(config.burst_time_fraction, 0.01, 0.99);
  const double m = std::max(config.burst_rate_multiplier, 1.0);
  const double calm_rate = config.rate_per_sec / (1.0 - f + f * m);
  const double burst_rate = m * calm_rate;
  // Dwell means chosen so the burst state occupies fraction f of time.
  const double dwell_burst_ns = config.burst_dwell_ms * 1e6;
  const double dwell_calm_ns = dwell_burst_ns * (1.0 - f) / f;

  bool burst = false;
  double t = 0.0;
  std::exponential_distribution<double> calm_dwell(1.0 / dwell_calm_ns);
  std::exponential_distribution<double> burst_dwell(1.0 / dwell_burst_ns);
  double switch_t = calm_dwell(rng);
  double last_arrival = 0.0;

  // Exponentials are memoryless, so discarding a draw that crosses the
  // state switch and redrawing at the new rate samples the MMPP exactly.
  while (gaps.size() < count) {
    std::exponential_distribution<double> gap_dist(
        (burst ? burst_rate : calm_rate) / 1e9);
    const double dt = gap_dist(rng);
    if (t + dt >= switch_t) {
      t = switch_t;
      burst = !burst;
      switch_t = t + (burst ? burst_dwell(rng) : calm_dwell(rng));
      continue;
    }
    t += dt;
    gaps.push_back(std::max<int64_t>(
        1, static_cast<int64_t>(t - last_arrival)));
    last_arrival = t;
  }
  return gaps;
}

double MeanNs(const std::vector<int64_t>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const int64_t s : samples) {
    sum += static_cast<double>(s);
  }
  return sum / static_cast<double>(samples.size());
}

double CoefficientOfVariation(const std::vector<int64_t>& samples) {
  if (samples.size() < 2) {
    return 0.0;
  }
  const double mean = MeanNs(samples);
  if (mean <= 0.0) {
    return 0.0;
  }
  double ss = 0.0;
  for (const int64_t s : samples) {
    const double d = static_cast<double>(s) - mean;
    ss += d * d;
  }
  const double stdev =
      std::sqrt(ss / static_cast<double>(samples.size() - 1));
  return stdev / mean;
}

int64_t PercentileNs(std::vector<int64_t> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(rank + 0.5)];
}

namespace {

struct ClientConn {
  net::Fd fd;
  net::FrameParser parser;
  std::string outbox;
  size_t out_offset = 0;
  bool want_write = false;
  bool dead = false;
  // request_ids written on this connection and not yet answered; on
  // connection death they are reclassified as failed.
  std::unordered_map<uint64_t, int64_t> pending_scheduled_ns;
};

}  // namespace

OpenLoopResult RunOpenLoop(const OpenLoopOptions& options) {
  OpenLoopResult result;

  size_t total = options.total_requests;
  if (total == 0) {
    total = static_cast<size_t>(options.arrivals.rate_per_sec *
                                options.duration_s);
  }
  if (total == 0 || options.connections == 0 || !options.make_request) {
    result.connect_failed = true;
    return result;
  }
  const std::vector<int64_t> gaps =
      GenerateInterArrivalsNs(options.arrivals, total, options.seed);

  net::Fd epoll_fd(::epoll_create1(0));
  if (!epoll_fd.valid()) {
    result.connect_failed = true;
    return result;
  }

  std::vector<ClientConn> conns(options.connections);
  for (size_t i = 0; i < conns.size(); ++i) {
    conns[i].fd = net::ConnectLocal(options.port, /*nonblocking=*/true);
    if (!conns[i].fd.valid()) {
      result.connect_failed = true;
      return result;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered; EPOLLOUT armed on demand
    ev.data.u64 = i;
    if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, conns[i].fd.get(), &ev) !=
        0) {
      result.connect_failed = true;
      return result;
    }
  }

  auto arm = [&](size_t i) {
    epoll_event ev{};
    ev.events = conns[i].want_write ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    ev.data.u64 = i;
    ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, conns[i].fd.get(), &ev);
  };

  uint64_t live_conns = conns.size();
  auto kill_conn = [&](size_t i) {
    ClientConn& c = conns[i];
    if (c.dead) {
      return;
    }
    ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
    c.fd.reset();
    c.dead = true;
    result.failed += c.pending_scheduled_ns.size();
    c.pending_scheduled_ns.clear();
    --live_conns;
  };

  auto flush_conn = [&](size_t i) {
    ClientConn& c = conns[i];
    while (c.out_offset < c.outbox.size()) {
      const ssize_t n =
          ::send(c.fd.get(), c.outbox.data() + c.out_offset,
                 c.outbox.size() - c.out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          if (!c.want_write) {
            c.want_write = true;
            arm(i);
          }
          return;
        }
        kill_conn(i);
        return;
      }
      c.out_offset += static_cast<size_t>(n);
    }
    c.outbox.clear();
    c.out_offset = 0;
    if (c.want_write) {
      c.want_write = false;
      arm(i);
    }
  };

  std::vector<net::Frame> frames;
  auto read_conn = [&](size_t i) {
    ClientConn& c = conns[i];
    uint8_t buf[16 * 1024];
    while (!c.dead) {
      const ssize_t n = ::read(c.fd.get(), buf, sizeof(buf));
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          return;
        }
        kill_conn(i);
        return;
      }
      if (n == 0) {
        kill_conn(i);
        return;
      }
      frames.clear();
      if (c.parser.Feed(buf, static_cast<size_t>(n), &frames) !=
          net::WireError::kOk) {
        // Server spoke garbage (or sent kError as a stream): everything
        // pending on this connection is failed.
        kill_conn(i);
        return;
      }
      const int64_t now = NowNs();
      for (const net::Frame& frame : frames) {
        const auto it = c.pending_scheduled_ns.find(frame.request_id);
        if (it == c.pending_scheduled_ns.end()) {
          continue;  // duplicate/unsolicited; ignore
        }
        const int64_t scheduled = it->second;
        c.pending_scheduled_ns.erase(it);
        switch (frame.type) {
          case net::MsgType::kTxnReply:
          case net::MsgType::kHttpReply:
          case net::MsgType::kPong:
            ++result.acked;
            result.latencies_ns.push_back(std::max<int64_t>(
                0, now - scheduled));
            break;
          case net::MsgType::kRejected:
            ++result.rejected;
            break;
          default:
            ++result.failed;
            break;
        }
      }
      if (static_cast<size_t>(n) < sizeof(buf)) {
        return;  // drained
      }
    }
  };

  const int64_t start_ns = NowNs();
  size_t next_arrival = 0;
  int64_t next_arrival_at = start_ns + gaps[0];
  uint64_t next_request_id = 1;
  int64_t last_send_ns = -1;
  size_t rr = 0;  // round-robin connection cursor

  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];

  auto outstanding = [&]() -> uint64_t {
    return result.sent - result.acked - result.rejected - result.failed;
  };

  // Phase 1: run the schedule. Phase 2: drain in-flight replies.
  int64_t drain_deadline_ns = 0;
  while (true) {
    const bool sending = next_arrival < gaps.size();
    if (!sending) {
      if (drain_deadline_ns == 0) {
        drain_deadline_ns =
            NowNs() + static_cast<int64_t>(options.drain_timeout_ms) * 1000000;
      }
      if (outstanding() == 0 || live_conns == 0 ||
          NowNs() >= drain_deadline_ns) {
        break;
      }
    }

    // Send every arrival whose scheduled tick has passed (millisecond
    // batching: epoll_wait granularity).
    const int64_t now = NowNs();
    while (next_arrival < gaps.size() && now >= next_arrival_at) {
      // Pick the next live connection round-robin.
      size_t tries = conns.size();
      while (tries > 0 && conns[rr % conns.size()].dead) {
        ++rr;
        --tries;
      }
      if (tries == 0) {
        break;  // every connection died; remaining schedule unsendable
      }
      const size_t ci = rr % conns.size();
      ++rr;

      net::Frame request = options.make_request(next_arrival);
      request.request_id = next_request_id++;
      std::string bytes;
      net::EncodeFrame(request, &bytes);
      ClientConn& c = conns[ci];
      c.outbox.append(bytes);
      c.pending_scheduled_ns.emplace(request.request_id, next_arrival_at);
      ++result.sent;
      const int64_t sent_at = NowNs();
      if (last_send_ns >= 0) {
        result.realized_interarrival_ns.push_back(sent_at - last_send_ns);
      }
      last_send_ns = sent_at;
      flush_conn(ci);

      ++next_arrival;
      if (next_arrival < gaps.size()) {
        next_arrival_at += gaps[next_arrival];
      }
    }
    if (next_arrival < gaps.size() && live_conns == 0) {
      break;  // nothing left to send on
    }

    int timeout_ms = 1;
    if (sending) {
      const int64_t wait_ns = next_arrival_at - NowNs();
      timeout_ms = wait_ns <= 0
                       ? 0
                       : static_cast<int>(
                             std::min<int64_t>(wait_ns / 1000000 + 1, 10));
    } else {
      timeout_ms = 10;
    }
    const int n = ::epoll_wait(epoll_fd.get(), events, kMaxEvents, timeout_ms);
    for (int e = 0; e < n; ++e) {
      const size_t i = static_cast<size_t>(events[e].data.u64);
      if (conns[i].dead) {
        continue;
      }
      if ((events[e].events & (EPOLLHUP | EPOLLERR)) != 0) {
        kill_conn(i);
        continue;
      }
      if ((events[e].events & EPOLLOUT) != 0) {
        flush_conn(i);
      }
      if (!conns[i].dead && (events[e].events & EPOLLIN) != 0) {
        read_conn(i);
      }
    }
  }

  result.in_flight = outstanding();
  const int64_t end_ns = NowNs();
  result.duration_s = static_cast<double>(end_ns - start_ns) / 1e9;
  int64_t schedule_span = 0;
  for (const int64_t g : gaps) {
    schedule_span += g;
  }
  result.offered_per_s = schedule_span > 0
                             ? static_cast<double>(gaps.size()) /
                                   (static_cast<double>(schedule_span) / 1e9)
                             : 0.0;
  result.achieved_per_s =
      result.duration_s > 0.0
          ? static_cast<double>(result.acked) / result.duration_s
          : 0.0;
  return result;
}

}  // namespace workload
