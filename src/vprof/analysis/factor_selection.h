// Factor ranking and selection (paper Section 3.2.2, Algorithm 1).
//
// A factor is the variance of a function (or of a function's body) or the
// covariance of a function pair, aggregated across every call site / tree
// position where it appears. Factors are ranked by
//
//   score(f) = specificity(f) * total (co)variance of f          (Eq. 4)
//   specificity(f) = (height(call_graph) - height(f))^p          (Eq. 3)
//
// with p = 2 by default; p = 1 and p = 3 are available for the Section 4.4
// specificity ablation.
#ifndef SRC_VPROF_ANALYSIS_FACTOR_SELECTION_H_
#define SRC_VPROF_ANALYSIS_FACTOR_SELECTION_H_

#include <string>
#include <vector>

#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/analysis/variance_tree.h"

namespace vprof {

enum class SpecificityKind {
  kLinear = 1,
  kQuadratic = 2,
  kCubic = 3,
};

struct Factor {
  // Variance factor: func_a set, func_b == kInvalidFunc.
  // Covariance factor: both set (canonical order func_a <= func_b).
  FuncId func_a = kInvalidFunc;
  FuncId func_b = kInvalidFunc;
  bool body_a = false;
  bool body_b = false;

  double total = 0.0;         // summed (co)variance across instances (ns^2);
                              // covariance instances count twice (Eq. 2)
  double contribution = 0.0;  // total / overall latency variance
  int height = 0;
  double specificity = 0.0;
  double score = 0.0;

  bool is_covariance() const { return func_b != kInvalidFunc; }
  std::string Label(const std::vector<std::string>& function_names) const;
};

struct FactorSelectionOptions {
  int top_k = 3;
  double min_contribution = 0.01;  // threshold d
  SpecificityKind specificity = SpecificityKind::kQuadratic;
};

// Aggregates all factors in the variance tree (unfiltered, sorted by score).
// The view form is the primitive: it works for any tree that can project a
// VarianceTreeView (the batch analysis or the online service's streaming
// tree); the VarianceAnalysis overloads forward through View().
std::vector<Factor> AggregateFactors(const VarianceTreeView& view,
                                     const CallGraph& graph, FuncId root,
                                     SpecificityKind specificity);
std::vector<Factor> AggregateFactors(const VarianceAnalysis& analysis,
                                     const CallGraph& graph, FuncId root,
                                     SpecificityKind specificity);

// Algorithm 1: the top-k factors with contribution >= d.
std::vector<Factor> SelectFactors(const VarianceTreeView& view,
                                  const CallGraph& graph, FuncId root,
                                  const FactorSelectionOptions& options);
std::vector<Factor> SelectFactors(const VarianceAnalysis& analysis,
                                  const CallGraph& graph, FuncId root,
                                  const FactorSelectionOptions& options);

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_FACTOR_SELECTION_H_
