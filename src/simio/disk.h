// Simulated storage device.
//
// The paper's case studies run against physical disks whose service-time
// variance (especially fsync) is one of the latency-variance sources VProfiler
// surfaces (MySQL fil_flush, Postgres WAL flush). This module substitutes a
// disk model: lognormal per-op service time, bandwidth-proportional transfer
// time, occasional fsync stalls (write-cache flushes), and optional
// single-spindle serialization so concurrent requests queue behind each other.
//
// Fault injection: every operation consults the failpoint registry under the
// device's `fault_scope` namespace (src/fault/failpoint.h):
//
//   <scope>/read_error    Read fails after error_latency_us
//   <scope>/write_error   Write fails after error_latency_us
//   <scope>/fsync_error   Fsync fails after error_latency_us; the dirty
//                         write buffer is DROPPED (fsyncgate: the kernel
//                         marks pages clean on a failed fsync, so the
//                         unsynced window is simply gone — retrying the
//                         fsync cannot resurrect it)
//   <scope>/torn_write    Write transfers only a seeded-random prefix of the
//                         requested bytes (reported in IoResult::bytes)
//   <scope>/stall         the operation takes an extra stall_us (device
//                         write-cache flush / firmware pause / link reset)
//
// With no failpoint armed the fault checks cost one relaxed atomic load.
#ifndef SRC_SIMIO_DISK_H_
#define SRC_SIMIO_DISK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/statkit/rng.h"

namespace simio {

struct DiskConfig {
  // Lognormal parameters of the base service time, in microseconds.
  double read_mu = 4.0;     // exp(4.0) ~ 55us median
  double read_sigma = 0.35;
  double write_mu = 3.7;    // ~40us median (buffered write)
  double write_sigma = 0.3;
  double fsync_mu = 5.3;    // ~200us median
  double fsync_sigma = 0.45;

  // With probability spike_prob an fsync takes spike_scale times longer
  // (models periodic device write-cache flushes / FTL garbage collection).
  double fsync_spike_prob = 0.03;
  double fsync_spike_scale = 6.0;

  // Transfer bandwidth for the size-dependent component.
  double bytes_per_us = 400.0;  // ~400 MB/s

  // When true, operations serialize on the device (one spindle): concurrent
  // callers queue, which is itself a variance source.
  bool serialize_access = true;

  uint64_t seed = 42;

  // Failpoint namespace for this device ("<scope>/read_error", ...), so a
  // test can fault one disk (the log device) without touching the others.
  std::string fault_scope = "disk";

  // Service time of an operation failed by an injected error: real devices
  // surface I/O errors only after internal retries and timeouts.
  double error_latency_us = 300.0;

  // Duration of an injected <scope>/stall fault.
  double stall_us = 20000.0;
};

enum class IoStatus : uint8_t {
  kOk,
  kError,
};

// Outcome of one disk operation. `bytes` is the count actually transferred —
// short of the request on a torn write.
struct IoResult {
  IoStatus status = IoStatus::kOk;
  uint64_t bytes = 0;

  bool ok() const { return status == IoStatus::kOk; }
};

// Per-device fault counters (all injected events observed so far).
struct DiskFaultStats {
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t fsync_errors = 0;
  uint64_t torn_writes = 0;
  uint64_t stalls = 0;
};

// Thread-safe simulated disk. Each operation blocks the calling thread for
// the sampled service duration.
class Disk {
 public:
  explicit Disk(const DiskConfig& config = DiskConfig{});

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Reads `bytes`; blocks for the sampled service time.
  IoResult Read(uint64_t bytes);

  // Writes `bytes` into the (simulated) device write buffer. A torn-write
  // fault transfers only IoResult::bytes of them.
  IoResult Write(uint64_t bytes);

  // Forces buffered writes to stable storage; the slow, high-variance op.
  // On success the write buffer is clean. On an injected error the buffer
  // is dropped, not kept dirty: like Linux after fsyncgate, a failed fsync
  // means the unsynced window is lost and a later successful fsync says
  // nothing about it — the caller must re-write from its own copy.
  IoResult Fsync();

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }

  // Bytes written since the last successful fsync.
  uint64_t buffered_bytes() const {
    return buffered_bytes_.load(std::memory_order_relaxed);
  }

  DiskFaultStats fault_stats() const;

  const DiskConfig& config() const { return config_; }

 private:
  // Samples a lognormal service time (microseconds) plus transfer time.
  double SampleServiceUs(double mu, double sigma, uint64_t bytes);
  void Service(double service_us);
  // Injected-stall check shared by all ops; returns the extra microseconds.
  double StallUs();

  DiskConfig config_;
  // Failpoint names, precomputed so the armed path does no string assembly.
  const std::string fp_read_error_;
  const std::string fp_write_error_;
  const std::string fp_fsync_error_;
  const std::string fp_torn_write_;
  const std::string fp_stall_;

  std::mutex rng_mu_;
  statkit::Rng rng_;
  std::mutex device_mu_;  // held for the service duration when serializing
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> buffered_bytes_{0};
  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> write_errors_{0};
  std::atomic<uint64_t> fsync_errors_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> stalls_{0};
};

// Blocks the calling thread for approximately `us` microseconds.
void SleepUs(double us);

}  // namespace simio

#endif  // SRC_SIMIO_DISK_H_
