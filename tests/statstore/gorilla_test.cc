// Codec-level tests: bitstream primitives, delta-of-delta timestamps, XOR
// doubles, and the per-record segment codec.
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/statstore/bitstream.h"
#include "src/statstore/gorilla.h"
#include "src/statstore/segment.h"

namespace statstore {
namespace {

TEST(BitstreamTest, RoundTripsMixedWidths) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xDEADBEEFCAFEF00Dull, 64);
  w.WriteBit(true);
  w.Write(0x3FF, 10);
  const std::vector<uint8_t> bytes = w.Take();

  BitReader r(bytes.data(), bytes.size());
  uint64_t v = 0;
  ASSERT_TRUE(r.Read(&v, 3));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.Read(&v, 64));
  EXPECT_EQ(v, 0xDEADBEEFCAFEF00Dull);
  bool b = false;
  ASSERT_TRUE(r.ReadBit(&b));
  EXPECT_TRUE(b);
  ASSERT_TRUE(r.Read(&v, 10));
  EXPECT_EQ(v, 0x3FFu);
}

TEST(BitstreamTest, ReadPastEndFailsCleanly) {
  BitWriter w;
  w.Write(0xAB, 8);
  const std::vector<uint8_t> bytes = w.Take();
  BitReader r(bytes.data(), bytes.size());
  uint64_t v = 0;
  ASSERT_TRUE(r.Read(&v, 8));
  EXPECT_FALSE(r.Read(&v, 1));
  EXPECT_TRUE(r.failed());
}

void RoundTripEpochs(const std::vector<uint64_t>& epochs) {
  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const uint64_t e : epochs) {
    enc.Append(&w, e);
  }
  const std::vector<uint8_t> bytes = w.Take();
  BitReader r(bytes.data(), bytes.size());
  DeltaOfDeltaDecoder dec;
  for (const uint64_t e : epochs) {
    uint64_t got = 0;
    ASSERT_TRUE(dec.Next(&r, &got));
    EXPECT_EQ(got, e);
  }
}

TEST(DeltaOfDeltaTest, RegularCadenceCostsOneBitPerEpoch) {
  std::vector<uint64_t> epochs;
  for (uint64_t i = 0; i < 1000; ++i) {
    epochs.push_back(100 + i);
  }
  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const uint64_t e : epochs) {
    enc.Append(&w, e);
  }
  // 64 raw bits + one 9-bit delta bucket + 998 zero-dod bits.
  EXPECT_LE(w.bit_count(), 64u + 9u + 999u);
  RoundTripEpochs(epochs);
}

TEST(DeltaOfDeltaTest, RoundTripsIrregularAndLargeJumps) {
  RoundTripEpochs({0});
  RoundTripEpochs({5, 6});
  RoundTripEpochs({1, 2, 3, 100, 101, 7, 1ull << 40, (1ull << 40) + 1});
  RoundTripEpochs({std::numeric_limits<uint64_t>::max() - 2,
                   std::numeric_limits<uint64_t>::max() - 1,
                   std::numeric_limits<uint64_t>::max()});
}

void RoundTripDoubles(const std::vector<double>& values) {
  BitWriter w;
  XorEncoder enc;
  for (const double v : values) {
    enc.Append(&w, v);
  }
  const std::vector<uint8_t> bytes = w.Take();
  BitReader r(bytes.data(), bytes.size());
  XorDecoder dec;
  for (const double v : values) {
    double got = 0.0;
    ASSERT_TRUE(dec.Next(&r, &got));
    // Bit-exact, including NaN payloads and signed zeros.
    EXPECT_EQ(DoubleBits(got), DoubleBits(v));
  }
}

TEST(XorCodecTest, RoundTripsSpecialValues) {
  RoundTripDoubles({0.0, -0.0, 1.0, -1.0,
                    std::numeric_limits<double>::infinity(),
                    -std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::quiet_NaN(),
                    std::numeric_limits<double>::denorm_min(),
                    std::numeric_limits<double>::max(),
                    std::numeric_limits<double>::min()});
}

TEST(XorCodecTest, ConstantSeriesCostsOneBitPerValue) {
  std::vector<double> values(1000, 3.25);
  BitWriter w;
  XorEncoder enc;
  for (const double v : values) {
    enc.Append(&w, v);
  }
  EXPECT_LE(w.bit_count(), 64u + 999u);
  RoundTripDoubles(values);
}

TEST(XorCodecTest, RoundTripsRandomWalk) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> step(0.0, 1.0);
  std::vector<double> values;
  double x = 1e6;
  for (int i = 0; i < 5000; ++i) {
    x += step(rng);
    values.push_back(x);
  }
  RoundTripDoubles(values);
}

TEST(XorCodecTest, RoundTripsAdversarialBitPatterns) {
  std::mt19937_64 rng(11);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(BitsToDouble(rng()));
  }
  RoundTripDoubles(values);
}

// ---------------------------------------------------------------------------
// Segment record codec
// ---------------------------------------------------------------------------

EpochSample Sample(uint64_t epoch,
                   std::vector<std::pair<std::string, double>> values) {
  EpochSample s;
  s.epoch = epoch;
  for (auto& [name, v] : values) {
    s.values.push_back(SeriesValue{std::move(name), v});
  }
  return s;
}

TEST(SegmentCodecTest, RoundTripsStreamsAcrossRecords) {
  SegmentEncoder enc;
  SegmentDecoder dec;
  const std::vector<EpochSample> samples = {
      Sample(10, {{"a", 1.5}, {"b", -2.0}}),
      Sample(11, {{"a", 1.5}, {"b", -2.5}, {"c", 100.0}}),
      Sample(12, {{"c", 101.0}}),               // a, b absent this epoch
      Sample(13, {{"a", 1.75}, {"c", 101.0}}),  // a reappears
  };
  for (const EpochSample& in : samples) {
    const std::vector<uint8_t> payload = enc.EncodeRecord(in);
    EpochSample out;
    ASSERT_TRUE(dec.DecodeRecord(payload.data(), payload.size(), &out));
    EXPECT_EQ(out.epoch, in.epoch);
    ASSERT_EQ(out.values.size(), in.values.size());
    // Decoded values come back in series-id order; match by name.
    for (const SeriesValue& want : in.values) {
      bool found = false;
      for (const SeriesValue& got : out.values) {
        if (got.series == want.series) {
          EXPECT_EQ(got.value, want.value) << want.series;
          found = true;
        }
      }
      EXPECT_TRUE(found) << want.series;
    }
  }
}

TEST(SegmentCodecTest, DuplicateSeriesKeepsFirstValue) {
  SegmentEncoder enc;
  SegmentDecoder dec;
  const std::vector<uint8_t> payload =
      enc.EncodeRecord(Sample(1, {{"dup", 7.0}, {"dup", 9.0}}));
  EpochSample out;
  ASSERT_TRUE(dec.DecodeRecord(payload.data(), payload.size(), &out));
  ASSERT_EQ(out.values.size(), 1u);
  EXPECT_EQ(out.values[0].value, 7.0);
}

TEST(SegmentCodecTest, TruncatedPayloadIsRejected) {
  SegmentEncoder enc;
  const std::vector<uint8_t> payload = enc.EncodeRecord(
      Sample(1, {{"x", 3.14}, {"y", 2.71}, {"z", 1.41}}));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    SegmentDecoder dec;
    EpochSample out;
    EXPECT_FALSE(dec.DecodeRecord(payload.data(), cut, &out))
        << "accepted a " << cut << "-byte prefix of " << payload.size();
  }
}

TEST(SegmentCodecTest, OverlongSeriesNameIsDroppedNotMangled) {
  SegmentEncoder enc;
  SegmentDecoder dec;
  const std::string long_name(kMaxSeriesNameBytes + 1, 'n');
  const std::vector<uint8_t> payload =
      enc.EncodeRecord(Sample(1, {{long_name, 1.0}, {"ok", 2.0}}));
  EpochSample out;
  ASSERT_TRUE(dec.DecodeRecord(payload.data(), payload.size(), &out));
  ASSERT_EQ(out.values.size(), 1u);
  EXPECT_EQ(out.values[0].series, "ok");
}

}  // namespace
}  // namespace statstore
