// Reproduces paper Table 1: overall impact of modifying each function that
// VProfiler identified, across all three systems.
//
// Paper rows (reduction of overall mean / variance / p99):
//   MySQL    os_event_wait        VATS lock scheduling      84.0 / 82.1 / 50.0
//   MySQL    buf_pool_mutex_enter LLU / spin lock           10.7 / 35.5 / 26.5
//   MySQL    fil_flush            flush-policy tuning       18.7 / 27.0 / 14.5
//   Postgres LWLockAcquireOrWait  distributed logging       58.5 / 44.8 / 23.7
//   Apache   apr_bucket_alloc     bulk memory allocation     4.8 / 60.0 / 42.9
#include "bench/common.h"

namespace {

void Row(const char* system, const char* function, const char* fix,
         const bench::LatencyStats& base, const bench::LatencyStats& treated,
         double paper_mean, double paper_var, double paper_p99) {
  std::printf("%-9s %-22s %-22s ", system, function, fix);
  std::printf("mean %6.1f%% (%5.1f)  var %6.1f%% (%5.1f)  p99 %6.1f%% (%5.1f)\n",
              statkit::ReductionPercent(base.mean_ms, treated.mean_ms), paper_mean,
              statkit::ReductionPercent(base.variance_ms2, treated.variance_ms2),
              paper_var,
              statkit::ReductionPercent(base.p99_ms, treated.p99_ms), paper_p99);
}

}  // namespace

int main() {
  bench::PrintHeader("Table 1 — impact of each fix (measured %% (paper %%))");

  // MySQL rows.
  const workload::TpccOptions resident_options = bench::TpccQuick(24, 100);
  const workload::TpccOptions constrained_options = bench::TpccQuick(4, 700);

  minidb::EngineConfig fcfs = bench::MysqlMemoryResidentConfig();
  fcfs.warehouses = 2;
  const bench::LatencyStats fcfs_stats = bench::RunMinidb(fcfs, resident_options);
  minidb::EngineConfig vats = fcfs;
  vats.lock_scheduling = minidb::LockScheduling::kVats;
  const bench::LatencyStats vats_stats = bench::RunMinidb(vats, resident_options);
  Row("MySQL", "os_event_wait", "VATS oldest-first", fcfs_stats, vats_stats,
      84.0, 82.1, 50.0);

  minidb::EngineConfig mutex_config = bench::MysqlMemoryConstrainedConfig();
  const bench::LatencyStats mutex_stats =
      bench::RunMinidb(mutex_config, constrained_options);
  minidb::EngineConfig llu_config = mutex_config;
  llu_config.buffer_policy = minidb::BufferPolicy::kLazyLruUpdate;
  const bench::LatencyStats llu_stats =
      bench::RunMinidb(llu_config, constrained_options);
  Row("MySQL", "buf_pool_mutex_enter", "LLU / spin lock", mutex_stats, llu_stats,
      10.7, 35.5, 26.5);

  // Flush policy is evaluated in the memory-resident regime, where the
  // commit-path flush is a visible share of latency.
  const workload::TpccOptions flush_options = bench::TpccQuick(4, 700);
  minidb::EngineConfig eager_config = bench::MysqlMemoryResidentConfig();
  eager_config.warehouses = 2;
  const bench::LatencyStats eager_stats =
      bench::RunMinidb(eager_config, flush_options);
  minidb::EngineConfig lazy_config = eager_config;
  lazy_config.flush_policy = minidb::FlushPolicy::kLazyFlush;
  const bench::LatencyStats lazy_stats =
      bench::RunMinidb(lazy_config, flush_options);
  Row("MySQL", "fil_flush", "lazy flush policy", eager_stats, lazy_stats, 18.7,
      27.0, 14.5);

  // Postgres row: more backends -> deeper WAL-lock queues, where the
  // distributed-logging fix acts.
  const workload::TpccOptions pg_options = bench::TpccQuick(8, 700);
  const bench::LatencyStats pg_base =
      bench::RunMinipg(bench::PostgresConfig(1), pg_options);
  const bench::LatencyStats pg_fix =
      bench::RunMinipg(bench::PostgresConfig(2), pg_options);
  Row("Postgres", "LWLockAcquireOrWait", "distributed logging", pg_base, pg_fix,
      58.5, 44.8, 23.7);

  // Apache row. Long runs so both configurations average over many
  // memory-pressure windows.
  workload::AbOptions ab_options;
  ab_options.clients = 8;
  ab_options.requests_per_client = 4000;
  const bench::LatencyStats ab_base =
      bench::RunHttpd(bench::ApacheConfig(/*bulk=*/false), ab_options);
  const bench::LatencyStats ab_fix =
      bench::RunHttpd(bench::ApacheConfig(/*bulk=*/true), ab_options);
  Row("Apache", "apr_bucket_alloc", "bulk allocation", ab_base, ab_fix, 4.8,
      60.0, 42.9);

  return 0;
}
