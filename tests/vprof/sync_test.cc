#include "src/vprof/sync.h"

#include <thread>

#include <gtest/gtest.h>

#include "src/simio/disk.h"

namespace vprof {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (IsTracing()) {
      StopTracing();
    }
  }
};

TEST_F(SyncTest, OwnerStampPackUnpack) {
  const uint64_t packed = PackOwnerStamp(7, 123456789);
  const OwnerStamp stamp = UnpackOwnerStamp(packed);
  EXPECT_EQ(stamp.tid, 7);
  EXPECT_EQ(stamp.time, 123456789);
}

TEST_F(SyncTest, OwnerMapRecordLookup) {
  int object = 0;
  OwnerMap::Get().Record(&object, 3, 999);
  const auto stamp = OwnerMap::Get().Lookup(&object);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(stamp->tid, 3);
  EXPECT_EQ(stamp->time, 999);
  int other = 0;
  EXPECT_FALSE(OwnerMap::Get().Lookup(&other).has_value());
}

TEST_F(SyncTest, MutexBasicExclusion) {
  Mutex mu;
  int counter = 0;
  std::thread threads[4];
  for (auto& t : threads) {
    t = std::thread([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<Mutex> lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter, 40000);
}

TEST_F(SyncTest, ContendedMutexRecordsBlockedSegmentWithWakeEdge) {
  Mutex mu;
  StartTracing();
  CurrentThread();  // ensure the main thread is registered
  Event holder_has_lock;
  std::thread holder([&] {
    mu.lock();
    holder_has_lock.Set();
    simio::SleepUs(20000);  // hold long enough to force contention
    mu.unlock();
  });
  holder_has_lock.Wait();
  mu.lock();  // must block, then record a wake-up edge to the holder
  mu.unlock();
  holder.join();
  const Trace trace = StopTracing();
  bool found_long_blocked_with_edge = false;
  for (const ThreadTrace& t : trace.threads) {
    for (const Segment& seg : t.segments) {
      if (seg.state == SegmentState::kBlocked && seg.waker_tid != kNoThread) {
        EXPECT_NE(seg.waker_tid, t.tid);
        if (seg.end - seg.start > 1000000) {  // the ~20ms lock wait
          found_long_blocked_with_edge = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_long_blocked_with_edge);
}

TEST_F(SyncTest, EventWakeEdgePointsAtSetter) {
  StartTracing();
  CurrentThread();
  Event event;
  ThreadId setter_tid = kNoThread;
  std::thread setter([&] {
    simio::SleepUs(15000);
    setter_tid = CurrentThread()->tid();
    event.Set();
  });
  event.Wait();
  setter.join();
  const Trace trace = StopTracing();
  bool found = false;
  for (const ThreadTrace& t : trace.threads) {
    for (const Segment& seg : t.segments) {
      if (seg.state == SegmentState::kBlocked &&
          seg.waker_tid == setter_tid && setter_tid != kNoThread) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SyncTest, EventSetBeforeWaitDoesNotBlock) {
  Event event;
  event.Set();
  event.Wait();  // returns immediately
  event.Reset();
  EXPECT_FALSE(event.IsSet());
  event.Set();
  EXPECT_TRUE(event.IsSet());
}

TEST_F(SyncTest, CondVarPredicateWait) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    simio::SleepUs(5000);
    {
      std::lock_guard<Mutex> lock(mu);
      ready = true;
    }
    cv.NotifyAll();
  });
  {
    std::lock_guard<Mutex> lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  signaler.join();
}

TEST_F(SyncTest, UncontendedLockRecordsNothing) {
  StartTracing();
  Mutex mu;
  {
    std::lock_guard<Mutex> lock(mu);
  }
  const Trace trace = StopTracing();
  for (const ThreadTrace& t : trace.threads) {
    for (const Segment& seg : t.segments) {
      EXPECT_NE(seg.state, SegmentState::kBlocked);
    }
  }
}

}  // namespace
}  // namespace vprof
