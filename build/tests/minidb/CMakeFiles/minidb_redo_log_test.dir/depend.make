# Empty dependencies file for minidb_redo_log_test.
# This may be replaced when dependencies are built.
