// RegressionDetector: zero false positives on a steady noisy workload,
// prompt flags on an injected contribution shift, warmup/cooldown
// semantics, and baseline re-centering after a sustained shift.
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/statstore/regression.h"

namespace statstore {
namespace {

// Options matching the vprofd defaults for contribution-share streams.
RegressionOptions ShareOptions() {
  RegressionOptions o;
  o.k_sigma = 6.0;
  o.sigma_floor = 0.01;
  o.min_abs_shift = 0.05;
  o.half_life_epochs = 64.0;
  o.warmup_epochs = 8;
  o.cooldown_epochs = 8;
  return o;
}

TEST(RegressionTest, SteadyWorkloadNeverFlags) {
  RegressionDetector detector(ShareOptions());
  std::mt19937_64 rng(17);
  // Three factors with different means and realistic epoch-to-epoch wobble.
  std::normal_distribution<double> lock_noise(0.45, 0.015);
  std::normal_distribution<double> flush_noise(0.30, 0.010);
  std::normal_distribution<double> io_noise(0.10, 0.008);
  for (uint64_t epoch = 1; epoch <= 500; ++epoch) {
    EXPECT_FALSE(detector.Observe("lock", epoch, lock_noise(rng)));
    EXPECT_FALSE(detector.Observe("flush", epoch, flush_noise(rng)));
    EXPECT_FALSE(detector.Observe("io", epoch, io_noise(rng)));
  }
  EXPECT_EQ(detector.flag_count(), 0u);
  EXPECT_EQ(detector.series_count(), 3u);
}

TEST(RegressionTest, InjectedShiftFlagsWithinThreeEpochs) {
  RegressionDetector detector(ShareOptions());
  std::mt19937_64 rng(23);
  std::normal_distribution<double> noise(0.0, 0.01);
  const uint64_t kShiftEpoch = 100;
  uint64_t flagged_at = 0;
  for (uint64_t epoch = 1; epoch <= 120; ++epoch) {
    // The paper's migration scenario: LogFlush's variance share jumps from
    // ~20% to ~55% when the log device degrades.
    const double base = epoch < kShiftEpoch ? 0.20 : 0.55;
    if (detector.Observe("node:root/LogFlush:share", epoch,
                         base + noise(rng)) &&
        flagged_at == 0) {
      flagged_at = epoch;
    }
  }
  ASSERT_NE(flagged_at, 0u) << "shift never flagged";
  EXPECT_GE(flagged_at, kShiftEpoch);
  EXPECT_LE(flagged_at, kShiftEpoch + 2) << "flag too slow";

  const std::vector<RegressionFlag> flags = detector.flags();
  ASSERT_FALSE(flags.empty());
  const RegressionFlag& flag = flags.front();
  EXPECT_EQ(flag.series, "node:root/LogFlush:share");
  EXPECT_EQ(flag.epoch, flagged_at);
  EXPECT_NEAR(flag.baseline_mean, 0.20, 0.02);
  EXPECT_GT(flag.value, 0.5);
  EXPECT_GT(flag.sigmas, 6.0);  // well outside the band, and positive
}

TEST(RegressionTest, WarmupSuppressesEarlyFlags) {
  RegressionOptions opts = ShareOptions();
  opts.warmup_epochs = 5;
  RegressionDetector detector(opts);
  // Wild swings during warmup are baseline formation, not regressions.
  EXPECT_FALSE(detector.Observe("s", 1, 0.9));
  EXPECT_FALSE(detector.Observe("s", 2, 0.1));
  EXPECT_FALSE(detector.Observe("s", 3, 0.9));
  EXPECT_FALSE(detector.Observe("s", 4, 0.1));
  EXPECT_FALSE(detector.Observe("s", 5, 0.9));
  EXPECT_EQ(detector.flag_count(), 0u);
}

TEST(RegressionTest, CooldownSuppressesDuplicateFlags) {
  RegressionOptions opts = ShareOptions();
  opts.cooldown_epochs = 10;
  RegressionDetector detector(opts);
  for (uint64_t epoch = 1; epoch <= 50; ++epoch) {
    ASSERT_FALSE(detector.Observe("s", epoch, 0.20));
  }
  // A sustained shift: exactly one flag, then silence while re-centering.
  uint64_t flags_raised = 0;
  for (uint64_t epoch = 51; epoch <= 58; ++epoch) {
    if (detector.Observe("s", epoch, 0.60)) ++flags_raised;
  }
  EXPECT_EQ(flags_raised, 1u);
  EXPECT_EQ(detector.flag_count(), 1u);
}

TEST(RegressionTest, BaselineRecentersAfterSustainedShift) {
  RegressionOptions opts = ShareOptions();
  opts.half_life_epochs = 16.0;  // re-center quickly for the test
  opts.cooldown_epochs = 4;
  RegressionDetector detector(opts);
  for (uint64_t epoch = 1; epoch <= 50; ++epoch) {
    ASSERT_FALSE(detector.Observe("s", epoch, 0.20));
  }
  // Hold the new level long enough for the decayed baseline to adopt it.
  uint64_t last_flag_epoch = 0;
  for (uint64_t epoch = 51; epoch <= 250; ++epoch) {
    if (detector.Observe("s", epoch, 0.60)) last_flag_epoch = epoch;
  }
  // Flags stop once the baseline has migrated: the shift is the new normal.
  EXPECT_LT(last_flag_epoch, 150u);
  double mean = 0.0, sigma = 0.0;
  ASSERT_TRUE(detector.Baseline("s", &mean, &sigma));
  EXPECT_NEAR(mean, 0.60, 0.02);
  // And a fresh shift from the NEW baseline still flags.
  bool reflagged = false;
  for (uint64_t epoch = 251; epoch <= 254; ++epoch) {
    reflagged = detector.Observe("s", epoch, 0.95) || reflagged;
  }
  EXPECT_TRUE(reflagged);
}

TEST(RegressionTest, NonFiniteValuesAreIgnored) {
  RegressionDetector detector(ShareOptions());
  for (uint64_t epoch = 1; epoch <= 20; ++epoch) {
    ASSERT_FALSE(detector.Observe("s", epoch, 0.5));
  }
  EXPECT_FALSE(detector.Observe("s", 21, std::nan("")));
  EXPECT_FALSE(
      detector.Observe("s", 22, std::numeric_limits<double>::infinity()));
  // The baseline was not poisoned: normal values still pass quietly.
  EXPECT_FALSE(detector.Observe("s", 23, 0.5));
  double mean = 0.0, sigma = 0.0;
  ASSERT_TRUE(detector.Baseline("s", &mean, &sigma));
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_NEAR(mean, 0.5, 1e-9);
}

TEST(RegressionTest, FlagBufferIsBounded) {
  RegressionOptions opts = ShareOptions();
  opts.max_flags = 4;
  opts.cooldown_epochs = 0;
  opts.warmup_epochs = 1;
  opts.min_abs_shift = 0.0;
  opts.sigma_floor = 1e-6;
  RegressionDetector detector(opts);
  // Geometric growth keeps every value far outside the trailing 6-sigma
  // band, so every post-warmup epoch flags.
  uint64_t raised = 0;
  double value = 1.0;
  for (uint64_t epoch = 1; epoch <= 40; ++epoch) {
    value *= 10.0;
    if (detector.Observe("s", epoch, value)) ++raised;
  }
  EXPECT_GT(raised, 4u);
  EXPECT_EQ(detector.flag_count(), raised);
  const std::vector<RegressionFlag> flags = detector.flags();
  EXPECT_EQ(flags.size(), 4u);  // FIFO-bounded
  // The retained flags are the most recent ones.
  EXPECT_EQ(flags.back().epoch, 40u);
}

}  // namespace
}  // namespace statstore
