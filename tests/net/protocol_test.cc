// Satellite: protocol framing property test — round-trips every message
// type through encode/decode, then runs a deterministic seeded fuzz sweep
// over truncations, single-byte corruptions and oversized lengths. The
// contract under attack: a malformed stream produces exactly one typed
// WireError, never a partial frame, and a poisoned parser never dispatches
// anything from bytes after the violation.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/net/protocol.h"

namespace net {
namespace {

Frame TxnFrame(size_t items) {
  Frame frame;
  frame.type = MsgType::kTxn;
  frame.request_id = 0x1122334455667788ull;
  frame.txn.type = minidb::TxnType::kNewOrder;
  frame.txn.warehouse = 7;
  frame.txn.district = 3;
  frame.txn.customer = 1234567;
  for (size_t i = 0; i < items; ++i) {
    frame.txn.items.push_back(static_cast<int64_t>(1000 + i));
  }
  return frame;
}

std::vector<Frame> AllTypesRoundTripSet() {
  std::vector<Frame> frames;
  frames.push_back(TxnFrame(5));
  frames.push_back(TxnFrame(0));

  Frame get;
  get.type = MsgType::kHttpGet;
  get.request_id = 2;
  get.file_id = 0xdeadbeefcafeull;
  frames.push_back(get);

  Frame ping;
  ping.type = MsgType::kPing;
  ping.request_id = 3;
  frames.push_back(ping);

  Frame txn_reply;
  txn_reply.type = MsgType::kTxnReply;
  txn_reply.request_id = 4;
  txn_reply.status = 1;
  txn_reply.error = static_cast<uint8_t>(minidb::TxnError::kDeadlock);
  txn_reply.value = 991;
  frames.push_back(txn_reply);

  Frame http_reply;
  http_reply.type = MsgType::kHttpReply;
  http_reply.request_id = 5;
  http_reply.status = 0;
  http_reply.value = 4096;
  frames.push_back(http_reply);

  Frame pong;
  pong.type = MsgType::kPong;
  pong.request_id = 6;
  frames.push_back(pong);

  Frame rejected;
  rejected.type = MsgType::kRejected;
  rejected.request_id = 7;
  frames.push_back(rejected);

  Frame error;
  error.type = MsgType::kError;
  error.request_id = 8;
  error.error = static_cast<uint8_t>(WireError::kBadType);
  frames.push_back(error);

  return frames;
}

void ExpectFramesEqual(const Frame& a, const Frame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.txn.type, b.txn.type);
  EXPECT_EQ(a.txn.warehouse, b.txn.warehouse);
  EXPECT_EQ(a.txn.district, b.txn.district);
  EXPECT_EQ(a.txn.customer, b.txn.customer);
  EXPECT_EQ(a.txn.items, b.txn.items);
  EXPECT_EQ(a.file_id, b.file_id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.value, b.value);
}

TEST(NetProtocolTest, RoundTripsEveryMessageType) {
  for (const Frame& original : AllTypesRoundTripSet()) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    Frame decoded;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kOk)
        << "type=" << static_cast<int>(original.type);
    EXPECT_EQ(consumed, bytes.size());
    ExpectFramesEqual(original, decoded);
  }
}

TEST(NetProtocolTest, DecodesBackToBackFramesFromOneBuffer) {
  std::string bytes;
  const std::vector<Frame> frames = AllTypesRoundTripSet();
  for (const Frame& frame : frames) {
    EncodeFrame(frame, &bytes);
  }
  size_t offset = 0;
  for (const Frame& expected : frames) {
    Frame decoded;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()) +
                              offset,
                          bytes.size() - offset, &decoded, &consumed),
              WireError::kOk);
    ExpectFramesEqual(expected, decoded);
    offset += consumed;
  }
  EXPECT_EQ(offset, bytes.size());
}

// Every strict prefix of a valid frame is kNeedMore — never an error, never
// a partial decode.
TEST(NetProtocolTest, EveryTruncationIsNeedMore) {
  for (const Frame& original : AllTypesRoundTripSet()) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      Frame decoded;
      size_t consumed = 1234;
      const WireError err =
          DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()), cut,
                      &decoded, &consumed);
      ASSERT_EQ(err, WireError::kNeedMore)
          << "type=" << static_cast<int>(original.type) << " cut=" << cut;
      EXPECT_EQ(consumed, 0u);
    }
  }
}

// A parser fed one byte at a time produces exactly the original frames.
TEST(NetProtocolTest, ByteAtATimeFeedReassembles) {
  std::string bytes;
  const std::vector<Frame> frames = AllTypesRoundTripSet();
  for (const Frame& frame : frames) {
    EncodeFrame(frame, &bytes);
  }
  FrameParser parser;
  std::vector<Frame> out;
  for (const char byte : bytes) {
    ASSERT_EQ(parser.Feed(reinterpret_cast<const uint8_t*>(&byte), 1, &out),
              WireError::kOk);
  }
  ASSERT_EQ(out.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    ExpectFramesEqual(frames[i], out[i]);
  }
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(NetProtocolTest, OversizedDeclaredLengthIsRejectedEarly) {
  // Header claims more than kMaxFrameBytes: rejected from the length field
  // alone, before any payload arrives — the bounded-buffer guarantee.
  const uint32_t huge = kMaxFrameBytes + 1;
  uint8_t header[4];
  std::memcpy(header, &huge, 4);
  Frame decoded;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(header, 4, &decoded, &consumed),
            WireError::kOversized);

  FrameParser parser;
  std::vector<Frame> out;
  EXPECT_EQ(parser.Feed(header, 4, &out), WireError::kOversized);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(NetProtocolTest, LengthBelowOverheadIsRejected) {
  for (uint32_t length = 0; length < kFrameOverhead; ++length) {
    std::string bytes;
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
    }
    bytes.append(length, '\0');
    Frame decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kOversized)
        << "length=" << length;
  }
}

TEST(NetProtocolTest, UnknownTypeAndBadEnumsAreTyped) {
  // Unknown message type.
  {
    std::string bytes;
    Frame ping;
    ping.type = MsgType::kPing;
    EncodeFrame(ping, &bytes);
    bytes[4] = 99;  // type byte
    Frame decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kBadType);
  }
  // Out-of-range txn type.
  {
    std::string bytes;
    EncodeFrame(TxnFrame(1), &bytes);
    bytes[kHeaderBytes] = 55;  // first payload byte = txn type
    Frame decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kBadPayload);
  }
  // Item count that disagrees with the payload size.
  {
    std::string bytes;
    EncodeFrame(TxnFrame(2), &bytes);
    bytes[kHeaderBytes + 17] = 9;  // n_items low byte: claims 9, carries 2
    Frame decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kBadPayload);
  }
  // Wrong fixed payload size.
  {
    std::string bytes;
    Frame pong;
    pong.type = MsgType::kPong;
    EncodeFrame(pong, &bytes);
    bytes.push_back('\0');  // extra payload byte
    bytes[0] = static_cast<char>(kFrameOverhead + 1);
    Frame decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(bytes.data()),
                          bytes.size(), &decoded, &consumed),
              WireError::kBadPayload);
  }
}

TEST(NetProtocolTest, ParserErrorIsStickyAndDispatchesNothingAfter) {
  FrameParser parser;
  std::vector<Frame> out;

  // One good frame, then garbage, then another good frame.
  std::string bytes;
  EncodeFrame(TxnFrame(1), &bytes);
  const size_t good = bytes.size();
  bytes.append("\xff\xff\xff\xff garbage garbage", 20);
  EncodeFrame(TxnFrame(2), &bytes);

  const WireError err = parser.Feed(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(), &out);
  EXPECT_NE(err, WireError::kOk);
  // Only the frame that completed before the violation came out.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].txn.items.size(), 1u);
  EXPECT_EQ(parser.error(), err);
  (void)good;

  // Poisoned: even perfectly valid bytes no longer dispatch.
  std::string clean;
  EncodeFrame(TxnFrame(3), &clean);
  out.clear();
  EXPECT_EQ(parser.Feed(reinterpret_cast<const uint8_t*>(clean.data()),
                        clean.size(), &out),
            err);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

// Deterministic fuzz: corrupt every byte position of every frame type with
// seeded random values. The decoder must either accept (some corruptions
// are semantically harmless — request ids, payload values) or return a
// typed error; it must never crash, loop, over-consume, or hand back a
// frame from a stream that then desyncs the parser's bounded buffer.
TEST(NetProtocolTest, SeededCorruptionSweepNeverDesyncs) {
  std::mt19937_64 rng(20260809);
  for (const Frame& original : AllTypesRoundTripSet()) {
    std::string bytes;
    EncodeFrame(original, &bytes);
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int round = 0; round < 4; ++round) {
        std::string corrupt = bytes;
        const uint8_t new_byte = static_cast<uint8_t>(rng());
        if (static_cast<uint8_t>(corrupt[pos]) == new_byte) {
          continue;
        }
        corrupt[pos] = static_cast<char>(new_byte);

        Frame decoded;
        size_t consumed = 0;
        const WireError err = DecodeFrame(
            reinterpret_cast<const uint8_t*>(corrupt.data()), corrupt.size(),
            &decoded, &consumed);
        switch (err) {
          case WireError::kOk:
            // Accepted: must have consumed a whole well-formed frame.
            ASSERT_GE(consumed, kHeaderBytes);
            ASSERT_LE(consumed, corrupt.size());
            break;
          case WireError::kNeedMore:
            // Corrupted length now claims more bytes than present; parser
            // would keep buffering (bounded by kMaxFrameBytes).
            EXPECT_EQ(consumed, 0u);
            break;
          case WireError::kOversized:
          case WireError::kBadType:
          case WireError::kBadPayload:
          case WireError::kBadExtension:
            EXPECT_EQ(consumed, 0u);
            break;
        }
      }
    }
  }
}

// Random garbage streams: fed in random chunk sizes, the parser must end in
// kOk (still syncing / buffering) or a typed error with an empty buffer —
// and must never yield more frames than the stream could possibly contain.
TEST(NetProtocolTest, SeededGarbageStreamsStayBounded) {
  std::mt19937_64 rng(77);
  for (int round = 0; round < 200; ++round) {
    const size_t len = 1 + static_cast<size_t>(rng() % 512);
    std::vector<uint8_t> noise(len);
    for (auto& b : noise) {
      b = static_cast<uint8_t>(rng());
    }
    FrameParser parser;
    std::vector<Frame> out;
    size_t offset = 0;
    WireError last = WireError::kOk;
    while (offset < noise.size() && last == WireError::kOk) {
      const size_t chunk =
          std::min<size_t>(1 + rng() % 64, noise.size() - offset);
      last = parser.Feed(noise.data() + offset, chunk, &out);
      offset += chunk;
    }
    EXPECT_LE(parser.buffered_bytes(),
              static_cast<size_t>(kMaxFrameBytes) + kLengthBytes);
    EXPECT_LE(out.size(), len / kHeaderBytes + 1);
  }
}

}  // namespace
}  // namespace net
