// End-to-end history + regression detection: minidb runs TPC-C epoch by
// epoch under full instrumentation, every epoch's factor shares are
// persisted into a statstore, and each share stream feeds the regression
// detector. On the steady workload the detector must stay silent; once a
// disk-stall failpoint starts freezing the log device, the log-flush path's
// contribution share jumps and the detector must flag it within three
// epochs — the deployable-monitoring loop the statstore exists for.
//
// Workload seeds and failpoint draws are pinned, so the fault epochs replay
// the same stall pattern on every run.
#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/minidb/engine.h"
#include "src/statstore/regression.h"
#include "src/statstore/store.h"
#include "src/vprof/analysis/factor_selection.h"
#include "src/vprof/analysis/variance_tree.h"
#include "src/vprof/registry.h"
#include "src/vprof/runtime.h"
#include "src/vprof/service/history.h"
#include "src/workload/tpcc.h"

namespace {

constexpr int kSteadyEpochs = 10;
constexpr int kFaultEpochs = 3;

bool IsLogPathSeries(const std::string& series) {
  return series.find("fil_flush") != std::string::npos ||
         series.find("log_write_up_to") != std::string::npos;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

class HistoryRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DeactivateAll();
    dir_ = std::filesystem::path(::testing::TempDir()) / "history_regression";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    vprof::DisableAllFunctions();
    fault::DeactivateAll();
    fault::ResetCounters();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

TEST_F(HistoryRegressionTest, DiskStallShiftsLogFlushShareAndIsFlagged) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  // A partially-cached working set makes seeded data-disk reads the
  // dominant — and steady — variance source, so the log path idles at a
  // near-zero share with a tight baseline until its device degrades.
  config.buffer_pool_pages = 256;
  config.data_disk.read_mu = 3.0;  // ~20us median page read
  // A healthy, boringly consistent log device: without the spiky fsync tail
  // the log path carries almost none of the steady-state variance, which is
  // exactly the regime where a degrading device shows up as a migration.
  config.log_disk.fsync_spike_prob = 0.0;
  config.log_disk.fsync_mu = 2.3;  // ~10us: a fast NVMe-class log device
  config.log_disk.fsync_sigma = 0.05;
  config.log_disk.write_mu = 2.0;
  config.log_disk.write_sigma = 0.05;
  config.log_disk.fault_scope = "hr_log_stall";
  config.log_disk.stall_us = 20000.0;  // one stalled fsync freezes a commit
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);
  const vprof::FuncId root = vprof::RegisterFunction("run_transaction");

  // Full instrumentation: every epoch's tree reaches fil_flush itself, so
  // the share stream the detector watches is the leaf the fault lives in.
  vprof::DisableAllFunctions();
  for (const std::string& name : vprof::AllFunctionNames()) {
    vprof::SetFunctionEnabled(vprof::RegisterFunction(name), true);
  }

  workload::TpccOptions options;
  // Single-threaded: a stalled fsync is then charged wholly to fil_flush
  // instead of smearing into other threads' group-commit waits, and the
  // request mix plus every disk draw replays from the seed.
  options.threads = 1;
  options.transactions_per_thread = 400;
  options.seed = 107;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up, untraced

  statstore::StoreOptions store_options;
  store_options.dir = dir_.string();
  statstore::StatStore store(store_options);
  ASSERT_TRUE(store.Open());

  statstore::RegressionOptions regression;
  regression.k_sigma = 4.0;
  regression.sigma_floor = 0.02;
  // Factor shares are percentages of the epoch's variance: only a shift of
  // tens of points is a migration, anything smaller is workload wobble.
  regression.min_abs_shift = 0.20;
  regression.half_life_epochs = 32.0;
  regression.warmup_epochs = 6;
  regression.cooldown_epochs = 4;
  statstore::RegressionDetector detector(regression);

  // vprofd feeds the detector (and the store) shares from its *decayed*
  // streaming tree, not from single-epoch trees; single-epoch variance
  // shares of a live system are heavy-tailed. Fold the same exponential
  // smoothing here so the streams match what the daemon persists.
  constexpr double kSmoothAlpha = 0.5;
  std::map<std::string, double> smoothed;
  std::map<std::string, std::vector<std::pair<uint64_t, double>>> observed;
  const auto run_epoch = [&](uint64_t epoch) {
    vprof::StartTracing();
    driver.Run();
    vprof::Trace trace = vprof::StopTracing();
    vprof::VarianceAnalysis analysis(trace, vprof::CriticalPathOptions{});
    const std::vector<vprof::Factor> factors = vprof::AggregateFactors(
        analysis, graph, root, vprof::SpecificityKind::kQuadratic);
    statstore::EpochSample sample;
    sample.epoch = epoch;
    for (const vprof::Factor& f : factors) {
      if (f.is_covariance() || !std::isfinite(f.contribution)) continue;
      const std::string series =
          vprof::NodeSeriesName(f.Label(trace.function_names), "share");
      const auto it = smoothed.find(series);
      const double value =
          it == smoothed.end()
              ? f.contribution
              : it->second + kSmoothAlpha * (f.contribution - it->second);
      smoothed[series] = value;
      sample.values.push_back({series, value});
      observed[series].emplace_back(epoch, value);
      detector.Observe(series, epoch, value);
    }
    ASSERT_EQ(store.Append(sample), statstore::AppendStatus::kOk);
    if (std::getenv("HR_DEBUG") != nullptr) {
      const std::string log_series = "node:fil_flush:share";
      double value = 0.0, mean = 0.0, sigma = 0.0;
      for (const auto& v : sample.values) {
        if (v.series == log_series) value = v.value;
      }
      detector.Baseline(log_series, &mean, &sigma);
      std::fprintf(stderr,
                   "epoch %llu stalls=%llu log share=%.3f mean=%.3f "
                   "sigma=%.3f flags=%llu\n",
                   (unsigned long long)epoch,
                   (unsigned long long)engine.log_disk().fault_stats().stalls,
                   value, mean, sigma,
                   (unsigned long long)detector.flag_count());
    }
  };

  uint64_t epoch = 0;
  for (int i = 0; i < kSteadyEpochs; ++i) run_epoch(++epoch);
  EXPECT_EQ(detector.flag_count(), 0u)
      << "steady workload must not raise flags; first flag on "
      << (detector.flags().empty() ? std::string("?")
                                   : detector.flags().front().series);

  // Firmware hiccup: the log device freezes for 20 ms on ~10% of its ops.
  fault::ScopedFailpoint stall("hr_log_stall/stall",
                               fault::Trigger::Probability(0.1, 7));
  for (int i = 0; i < kFaultEpochs; ++i) run_epoch(++epoch);
  EXPECT_GT(engine.log_disk().fault_stats().stalls, 0u);

  // The log path must be flagged within kFaultEpochs of the fault arming,
  // as an upward shift far outside the steady baseline.
  const std::vector<statstore::RegressionFlag> flags = detector.flags();
  const statstore::RegressionFlag* log_flag = nullptr;
  for (const statstore::RegressionFlag& flag : flags) {
    if (IsLogPathSeries(flag.series)) {
      log_flag = &flag;
      break;
    }
  }
  ASSERT_NE(log_flag, nullptr)
      << "no log-path flag among " << flags.size() << " flags";
  EXPECT_GT(log_flag->epoch, static_cast<uint64_t>(kSteadyEpochs));
  EXPECT_LE(log_flag->epoch, static_cast<uint64_t>(kSteadyEpochs) + 3);
  EXPECT_GT(log_flag->sigmas, 0.0);
  EXPECT_GT(log_flag->value, log_flag->baseline_mean + regression.min_abs_shift);

  // The persisted history answers "when did this factor migrate?": the
  // flagged stream queries back bit-exact, covering both phases.
  ASSERT_EQ(store.record_count(), static_cast<uint64_t>(epoch));
  const std::vector<statstore::SeriesPoint> points =
      store.Query(log_flag->series, 0, UINT64_MAX);
  const auto& expected = observed[log_flag->series];
  ASSERT_EQ(points.size(), expected.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].epoch, expected[i].first);
    EXPECT_EQ(DoubleBits(points[i].value), DoubleBits(expected[i].second));
  }
  EXPECT_EQ(points.back().epoch, static_cast<uint64_t>(epoch));
}

}  // namespace
