file(REMOVE_RECURSE
  "CMakeFiles/vprof_chrome_trace_test.dir/chrome_trace_test.cc.o"
  "CMakeFiles/vprof_chrome_trace_test.dir/chrome_trace_test.cc.o.d"
  "vprof_chrome_trace_test"
  "vprof_chrome_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_chrome_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
