# Empty compiler generated dependencies file for vprof_analysis_edge_test.
# This may be replaced when dependencies are built.
