// Cross-cutting property: the paper's Equation (2) decomposition holds for
// arbitrary random decompositions of a total into parts, across scales,
// correlation structures, and part counts — the mathematical foundation the
// variance tree rests on.
#include <vector>

#include <gtest/gtest.h>

#include "src/statkit/covariance.h"
#include "src/statkit/distributions.h"
#include "src/statkit/rng.h"
#include "src/statkit/welford.h"

namespace statkit {
namespace {

struct DecompositionCase {
  size_t parts;
  double scale;
  double correlation;  // weight of the shared component
  uint64_t seed;
};

class DecompositionProperty
    : public ::testing::TestWithParam<DecompositionCase> {};

TEST_P(DecompositionProperty, VarianceOfSumEqualsTreeDecomposition) {
  const DecompositionCase param = GetParam();
  Rng rng(param.seed);
  CovarianceMatrix matrix(param.parts);
  StreamingMoments total_moments;
  std::vector<double> parts(param.parts);
  for (int sample = 0; sample < 3000; ++sample) {
    const double shared = SampleLognormal(rng, 2.0, 0.8) * param.correlation;
    double total = 0.0;
    for (size_t i = 0; i < param.parts; ++i) {
      parts[i] = param.scale * (SampleExponential(rng, 1.0 + static_cast<double>(i)) +
                                (i % 2 == 0 ? shared : -0.4 * shared));
      total += parts[i];
    }
    matrix.Add(parts);
    total_moments.Add(total);
  }
  // Var(sum) == sum Var + 2 sum Cov, within numerical tolerance.
  const double lhs = total_moments.variance();
  double rhs = 0.0;
  for (size_t i = 0; i < param.parts; ++i) {
    rhs += matrix.Variance(i);
  }
  for (size_t i = 0; i < param.parts; ++i) {
    for (size_t j = i + 1; j < param.parts; ++j) {
      rhs += 2.0 * matrix.Covariance(i, j);
    }
  }
  EXPECT_NEAR(lhs, rhs, 1e-6 * (1.0 + lhs));
  // And VarianceOfSum agrees with the manual expansion.
  EXPECT_NEAR(matrix.VarianceOfSum(), rhs, 1e-6 * (1.0 + rhs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionProperty,
    ::testing::Values(DecompositionCase{2, 1.0, 0.0, 11},
                      DecompositionCase{3, 1.0, 1.0, 12},
                      DecompositionCase{5, 1000.0, 0.5, 13},
                      DecompositionCase{8, 1e-3, 2.0, 14},
                      DecompositionCase{12, 1e6, 0.2, 15},
                      DecompositionCase{20, 1.0, 3.0, 16}));

}  // namespace
}  // namespace statkit
