#include "src/vprof/analysis/factor_selection.h"

#include <gtest/gtest.h>

#include "tests/vprof/trace_builder.h"

namespace vprof {
namespace {

using vprof_test::TraceBuilder;

// Two-level app: txn -> {fast, slow}; slow -> {leafwork}. `leafwork`
// carries all the variance; `slow` inherits it one level up.
Trace BuildNestedTrace() {
  TraceBuilder tb;
  const std::vector<TimeNs> leaf = {100, 900, 300, 1500, 600, 1200};
  for (size_t i = 0; i < leaf.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 100000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs fast_end = base + 200;
    const TimeNs slow_end = fast_end + 50 + leaf[i];
    tb.Begin(0, sid, base).End(0, sid, slow_end);
    tb.Exec(0, sid, base, slow_end);
    const int txn = tb.Invoke(0, "txn", base, slow_end, -1, sid);
    tb.Invoke(0, "fast", base, fast_end, txn, sid);
    const int slow = tb.Invoke(0, "slow", fast_end, slow_end, txn, sid);
    tb.Invoke(0, "leafwork", fast_end + 50, slow_end, slow, sid);
  }
  return tb.Build();
}

CallGraph BuildNestedGraph() {
  CallGraph g;
  g.AddEdge("txn", "fast");
  g.AddEdge("txn", "slow");
  g.AddEdge("slow", "leafwork");
  return g;
}

TEST(CallGraphTest, HeightsAndChildren) {
  const CallGraph g = BuildNestedGraph();
  const FuncId txn = RegisterFunction("txn");
  const FuncId slow = RegisterFunction("slow");
  const FuncId leaf = RegisterFunction("leafwork");
  EXPECT_EQ(g.Height(txn), 2);
  EXPECT_EQ(g.Height(slow), 1);
  EXPECT_EQ(g.Height(leaf), 0);
  EXPECT_EQ(g.Children(txn).size(), 2u);
  EXPECT_TRUE(g.HasChildren(slow));
  EXPECT_FALSE(g.HasChildren(leaf));
}

TEST(CallGraphTest, RecursionDoesNotLoopForever) {
  CallGraph g;
  g.AddEdge("r", "r");
  g.AddEdge("r", "x");
  const FuncId r = RegisterFunction("r");
  EXPECT_GE(g.Height(r), 1);  // must terminate
}

TEST(FactorSelectionTest, SpecificityPrefersDeeperFunction) {
  // `slow` has slightly more total variance than `leafwork` (it adds its own
  // constant 50ns, so actually equal variance); specificity must rank
  // `leafwork` first because it sits lower in the call graph. This is the
  // WriteLog/CopyData intuition of paper Section 3.2.2.
  const Trace trace = BuildNestedTrace();
  const CallGraph graph = BuildNestedGraph();
  VarianceAnalysis va(trace);
  FactorSelectionOptions options;
  options.top_k = 2;
  options.min_contribution = 0.01;
  const auto selected =
      SelectFactors(va, graph, RegisterFunction("txn"), options);
  ASSERT_FALSE(selected.empty());
  EXPECT_EQ(selected[0].Label(trace.function_names), "leafwork");
}

TEST(FactorSelectionTest, ThresholdFiltersSmallFactors) {
  const Trace trace = BuildNestedTrace();
  const CallGraph graph = BuildNestedGraph();
  VarianceAnalysis va(trace);
  FactorSelectionOptions options;
  options.top_k = 10;
  options.min_contribution = 0.5;  // only dominant factors
  const auto selected =
      SelectFactors(va, graph, RegisterFunction("txn"), options);
  for (const Factor& f : selected) {
    EXPECT_GE(f.contribution, 0.5);
  }
  // `fast` (zero variance) must never be selected.
  for (const Factor& f : selected) {
    EXPECT_NE(f.Label(trace.function_names), "fast");
  }
}

TEST(FactorSelectionTest, TopKRespected) {
  const Trace trace = BuildNestedTrace();
  const CallGraph graph = BuildNestedGraph();
  VarianceAnalysis va(trace);
  FactorSelectionOptions options;
  options.top_k = 1;
  options.min_contribution = 0.0;
  const auto selected =
      SelectFactors(va, graph, RegisterFunction("txn"), options);
  EXPECT_EQ(selected.size(), 1u);
}

TEST(FactorSelectionTest, CovarianceFactorsDetectCoupledFunctions) {
  // Two siblings whose durations always move together: their covariance
  // factor must appear with roughly 2*Cov contribution (Apache-style
  // finding, paper Table 7).
  TraceBuilder tb;
  const std::vector<TimeNs> common = {100, 800, 300, 1200, 500, 900};
  for (size_t i = 0; i < common.size(); ++i) {
    const TimeNs base = static_cast<TimeNs>(i) * 100000;
    const IntervalId sid = static_cast<IntervalId>(i + 1);
    const TimeNs u_end = base + common[i];
    const TimeNs v_end = u_end + common[i];
    tb.Begin(0, sid, base).End(0, sid, v_end);
    tb.Exec(0, sid, base, v_end);
    const int txn = tb.Invoke(0, "txn", base, v_end, -1, sid);
    tb.Invoke(0, "u", base, u_end, txn, sid);
    tb.Invoke(0, "v", u_end, v_end, txn, sid);
  }
  const Trace trace = tb.Build();
  CallGraph graph;
  graph.AddEdge("txn", "u");
  graph.AddEdge("txn", "v");
  VarianceAnalysis va(trace);
  const auto all = AggregateFactors(va, graph, RegisterFunction("txn"),
                                    SpecificityKind::kQuadratic);
  const Factor* cov_factor = nullptr;
  for (const Factor& f : all) {
    if (f.is_covariance() && f.Label(trace.function_names).find("u") !=
                                 std::string::npos &&
        f.Label(trace.function_names).find("v") != std::string::npos) {
      cov_factor = &f;
    }
  }
  ASSERT_NE(cov_factor, nullptr);
  // Var(latency) = Var(2c) = 4 Var(c); Var(u)=Var(v)=Var(c);
  // 2Cov(u,v) = 2Var(c) -> contribution 0.5.
  EXPECT_NEAR(cov_factor->contribution, 0.5, 1e-6);
}

TEST(FactorSelectionTest, SpecificityKindsChangeOrdering) {
  // With linear specificity a shallow high-variance factor can outrank a
  // deep one; quadratic flips the order (Section 4.4 ablation behaviour).
  const Trace trace = BuildNestedTrace();
  const CallGraph graph = BuildNestedGraph();
  VarianceAnalysis va(trace);
  const FuncId txn = RegisterFunction("txn");
  const auto quad =
      AggregateFactors(va, graph, txn, SpecificityKind::kQuadratic);
  const auto lin = AggregateFactors(va, graph, txn, SpecificityKind::kLinear);
  ASSERT_FALSE(quad.empty());
  ASSERT_FALSE(lin.empty());
  // Quadratic: leafwork strictly first. Linear: leafwork's margin shrinks;
  // compare score ratios to confirm the weighting differs.
  auto score_of = [&](const std::vector<Factor>& v, const std::string& name) {
    for (const Factor& f : v) {
      if (f.Label(trace.function_names) == name) {
        return f.score;
      }
    }
    return 0.0;
  };
  const double quad_ratio =
      score_of(quad, "leafwork") / score_of(quad, "slow");
  const double lin_ratio = score_of(lin, "leafwork") / score_of(lin, "slow");
  EXPECT_GT(quad_ratio, lin_ratio);
}

TEST(CallGraphTest, DotExportContainsNodesAndEdges) {
  CallGraph g;
  g.AddEdge("dot_a", "dot_b");
  g.AddEdge("dot_a", "dot_c");
  const std::string dot = g.ToDot("mygraph");
  EXPECT_NE(dot.find("digraph mygraph {"), std::string::npos);
  EXPECT_NE(dot.find("\"dot_a\" -> \"dot_b\";"), std::string::npos);
  EXPECT_NE(dot.find("\"dot_a\" -> \"dot_c\";"), std::string::npos);
  EXPECT_NE(dot.find("\"dot_c\";"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(FactorTest, LabelFormats) {
  Factor f;
  f.func_a = 1;
  const std::vector<std::string> names = {"zero", "one", "two"};
  EXPECT_EQ(f.Label(names), "one");
  f.body_a = true;
  EXPECT_EQ(f.Label(names), "one(body)");
  f.body_a = false;
  f.func_b = 2;
  EXPECT_EQ(f.Label(names), "(one, two)");
}

}  // namespace
}  // namespace vprof
