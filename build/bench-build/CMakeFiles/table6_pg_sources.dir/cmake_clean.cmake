file(REMOVE_RECURSE
  "../bench/table6_pg_sources"
  "../bench/table6_pg_sources.pdb"
  "CMakeFiles/table6_pg_sources.dir/table6_pg_sources.cc.o"
  "CMakeFiles/table6_pg_sources.dir/table6_pg_sources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_pg_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
