// Redo log with group commit and the three durability policies of
// innodb_flush_log_at_trx_commit (paper Section 4.5, Figure 4 center).
//
//   kEager:     every commit waits until its LSN is written and fsync'd. A
//               leader thread performs one write+fsync per batch (group
//               commit); followers wait on a condvar. fil_flush — the fsync —
//               is the instrumented high-variance I/O function of Table 4.
//   kLazyFlush: commits write the log buffer but leave the fsync to the
//               background flusher thread (risking recent commits on crash).
//   kLazyWrite: commits return immediately; the flusher writes and syncs.
#ifndef SRC_MINIDB_REDO_LOG_H_
#define SRC_MINIDB_REDO_LOG_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/minidb/config.h"
#include "src/simio/disk.h"
#include "src/vprof/sync.h"

namespace minidb {

struct RedoLogStats {
  uint64_t appends = 0;
  uint64_t commit_waits = 0;   // commits that waited for another's flush
  uint64_t leader_flushes = 0;
  uint64_t background_flushes = 0;
};

class RedoLog {
 public:
  RedoLog(FlushPolicy policy, simio::Disk* disk, double flusher_period_us);
  ~RedoLog();

  RedoLog(const RedoLog&) = delete;
  RedoLog& operator=(const RedoLog&) = delete;

  // Appends `bytes` of redo to the log buffer; returns the record's LSN.
  uint64_t Append(uint64_t bytes);

  // Makes the log durable up to `lsn` according to the policy
  // (log_write_up_to). Blocks only under kEager.
  void CommitUpTo(uint64_t lsn);

  uint64_t flushed_lsn() const { return flushed_lsn_.load(std::memory_order_acquire); }
  uint64_t written_lsn() const { return written_lsn_.load(std::memory_order_acquire); }
  uint64_t next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }

  RedoLogStats stats() const;

 private:
  void FlusherLoop();
  // Writes pending bytes and fsyncs up to `target_lsn`; called with mu_ NOT
  // held. Returns after flushed_lsn_ >= target_lsn.
  void WriteAndFlush(uint64_t target_lsn, bool background);

  const FlushPolicy policy_;
  simio::Disk* disk_;
  const double flusher_period_us_;

  vprof::Mutex mu_;
  vprof::CondVar flushed_cv_;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> written_lsn_{0};
  std::atomic<uint64_t> flushed_lsn_{0};
  uint64_t pending_bytes_ = 0;  // bytes appended but not yet written
  bool flush_in_progress_ = false;

  mutable std::mutex stats_mu_;
  RedoLogStats stats_;

  std::atomic<bool> stop_{false};
  std::thread flusher_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_REDO_LOG_H_
