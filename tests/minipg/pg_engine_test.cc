#include "src/minipg/engine.h"

#include <gtest/gtest.h>

#include "src/workload/tpcc.h"

namespace minipg {
namespace {

PgConfig FastConfig() {
  PgConfig config;
  config.wal_disk.write_mu = 0.5;
  config.wal_disk.fsync_mu = 1.0;
  config.wal_disk.fsync_sigma = 0.05;
  config.wal_disk.fsync_spike_prob = 0.0;
  config.wal_disk.serialize_access = false;
  return config;
}

minidb::TxnRequest Request(minidb::TxnType type) {
  minidb::TxnRequest request;
  request.type = type;
  request.warehouse = 0;
  request.district = 2;
  request.customer = 10;
  request.items = {1, 2, 3, 4};
  return request;
}

TEST(ExecutorTest, PlanProducesRowsAndLocks) {
  PredicateLockManager locks;
  Executor executor(&locks, /*serializable=*/true);
  auto plan = PlanNode::Make(PlanNodeType::kAgg, 1, 0);
  plan->children.push_back(PlanNode::Make(PlanNodeType::kSeqScan, 10, 100));
  ExecContext context;
  context.txn_id = 1;
  statkit::Rng rng(5);
  context.rng = &rng;
  EXPECT_EQ(executor.ExecProcNode(*plan, &context), 1);  // Agg emits one row
  EXPECT_EQ(context.read_objects.size(), 1u);            // relation SIREAD
  EXPECT_EQ(locks.ActiveLocks(), 1u);
}

TEST(ExecutorTest, ModifyTableProducesWal) {
  PredicateLockManager locks;
  Executor executor(&locks, /*serializable=*/false);
  auto plan = PlanNode::Make(PlanNodeType::kModifyTable, 3, 200);
  ExecContext context;
  context.txn_id = 2;
  statkit::Rng rng(6);
  context.rng = &rng;
  executor.ExecProcNode(*plan, &context);
  EXPECT_EQ(context.wal_bytes, 3u * 180u);
  EXPECT_TRUE(context.read_objects.empty());  // not serializable
}

TEST(ExecutorTest, IndexScanRegistersPerRowLocks) {
  PredicateLockManager locks;
  Executor executor(&locks, /*serializable=*/true);
  auto plan = PlanNode::Make(PlanNodeType::kIndexScan, 4, 300);
  ExecContext context;
  context.txn_id = 3;
  statkit::Rng rng(7);
  context.rng = &rng;
  executor.ExecProcNode(*plan, &context);
  EXPECT_EQ(context.read_objects.size(), 4u);
}

TEST(PgEngineTest, AllTransactionTypesCommit) {
  PgEngine engine(FastConfig());
  for (auto type : {minidb::TxnType::kNewOrder, minidb::TxnType::kPayment,
                    minidb::TxnType::kOrderStatus, minidb::TxnType::kDelivery,
                    minidb::TxnType::kStockLevel}) {
    EXPECT_TRUE(engine.Execute(Request(type)));
  }
  EXPECT_EQ(engine.committed_count(), 5u);
  // Predicate locks fully released after commits.
  EXPECT_EQ(engine.predicate_locks().ActiveLocks(), 0u);
}

TEST(PgEngineTest, WriteTransactionsFlushWal) {
  PgEngine engine(FastConfig());
  engine.Execute(Request(minidb::TxnType::kPayment));
  EXPECT_GE(engine.wal().unit(0).stats().flushes_performed, 1u);
  EXPECT_GT(engine.wal().unit(0).flushed_lsn(), 0u);
}

TEST(PgEngineTest, ReadOnlyTransactionsSkipWal) {
  PgEngine engine(FastConfig());
  engine.Execute(Request(minidb::TxnType::kOrderStatus));
  engine.Execute(Request(minidb::TxnType::kStockLevel));
  EXPECT_EQ(engine.wal().unit(0).stats().flush_calls, 0u);
}

TEST(PgEngineTest, DistributedLoggingConfigRuns) {
  PgConfig config = FastConfig();
  config.wal_units = 2;
  PgEngine engine(config);
  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 40;
  workload::TpccDriver driver(nullptr, options);
  const auto result = driver.RunWith(
      [&](const minidb::TxnRequest& request) { return engine.Execute(request); },
      2);
  EXPECT_EQ(result.committed, 160u);
  EXPECT_EQ(engine.committed_count(), 160u);
  EXPECT_EQ(engine.predicate_locks().ActiveLocks(), 0u);
}

TEST(PgEngineTest, NonSerializableSkipsPredicateLocks) {
  PgConfig config = FastConfig();
  config.serializable = false;
  PgEngine engine(config);
  engine.Execute(Request(minidb::TxnType::kOrderStatus));
  EXPECT_EQ(engine.predicate_locks().stats().acquired, 0u);
}

TEST(PgEngineTest, CallGraphShape) {
  vprof::CallGraph graph;
  PgEngine::RegisterCallGraph(&graph);
  const auto root = vprof::RegisterFunction("exec_simple_query");
  EXPECT_EQ(graph.Children(root).size(), 2u);
  EXPECT_GE(graph.Height(root), 3);
  const auto lw = vprof::RegisterFunction("LWLockAcquireOrWait");
  EXPECT_FALSE(graph.HasChildren(lw));
}

}  // namespace
}  // namespace minipg
