// Profile minidb (the MySQL/InnoDB stand-in) under a TPC-C workload and
// print the latency-variance profile, then demonstrate acting on the
// finding: re-run with VATS lock scheduling and compare.
//
// This walks the exact loop of the paper's Section 4.5 case study.
//
// Build & run:  ./build/examples/profile_minidb
#include <cstdio>

#include "src/minidb/engine.h"
#include "src/statkit/summary.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/tpcc.h"

namespace {

statkit::Summary RunOnce(minidb::LockScheduling scheduling) {
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  config.lock_scheduling = scheduling;
  minidb::Engine engine(config);
  workload::TpccOptions options;
  options.threads = 8;
  options.transactions_per_thread = 300;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up
  const workload::TpccResult result = driver.Run();
  return statkit::Summarize(result.latencies_ns);
}

}  // namespace

int main() {
  std::printf("Step 1: profile transaction latency variance (FCFS locks).\n\n");

  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  minidb::Engine engine(config);
  vprof::CallGraph graph;
  minidb::Engine::RegisterCallGraph(&graph);

  workload::TpccOptions options;
  options.threads = 8;
  options.transactions_per_thread = 250;
  workload::TpccDriver driver(&engine, options);
  driver.Run();  // warm-up

  vprof::Profiler profiler("run_transaction", &graph, [&] { driver.Run(); });
  vprof::ProfileOptions profile_options;
  profile_options.top_k = 5;
  const vprof::ProfileResult result = profiler.Run(profile_options);
  std::printf("%s\n", result.Report().c_str());

  std::printf("Step 2: the top factor should be os_event_wait — record-lock\n"
              "waits under FCFS scheduling. Apply the paper's fix (VATS) and\n"
              "compare end-to-end latency:\n\n");

  const statkit::Summary fcfs = RunOnce(minidb::LockScheduling::kFcfs);
  const statkit::Summary vats = RunOnce(minidb::LockScheduling::kVats);
  std::printf("  FCFS: mean=%.2f ms  var=%.3f ms^2  p99=%.2f ms\n",
              fcfs.mean / 1e6, fcfs.variance / 1e12, fcfs.p99 / 1e6);
  std::printf("  VATS: mean=%.2f ms  var=%.3f ms^2  p99=%.2f ms\n",
              vats.mean / 1e6, vats.variance / 1e12, vats.p99 / 1e6);
  std::printf("  variance reduction: %.1f%%, p99 reduction: %.1f%%\n",
              statkit::ReductionPercent(fcfs.variance, vats.variance),
              statkit::ReductionPercent(fcfs.p99, vats.p99));
  return 0;
}
