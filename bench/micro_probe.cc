// Probe hot-path microbenchmark. Emits BENCH_probe.json with ns/probe for
// the three paths a probe can take — tracing-off, disabled (tracing on but
// the function not selected), enabled (full invocation record), and the
// DTrace-style full tracer — each single- and multi-threaded. This file is
// the perf anchor for the runtime hot path: run it before and after any
// change to probe.h/runtime.cc/full_tracer.cc and compare the JSON.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/vprof/probe.h"
#include "src/vprof/registry.h"

namespace {

constexpr int kThreads = 4;

void ProbedFunc() {
  VPROF_FUNC("micro_probe_fn");
  // No body: the probe itself is the entire cost being measured.
}

// Runs `iters` probed calls on one thread and returns wall ns for the loop.
int64_t TimeLoop(int64_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    ProbedFunc();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
      .count();
}

// ns/probe from a single-threaded loop.
double MeasureSingle(int64_t iters) {
  TimeLoop(iters / 10);  // warm-up
  return static_cast<double>(TimeLoop(iters)) / static_cast<double>(iters);
}

// ns/probe from `kThreads` concurrent loops: wall time over total probes.
// On contended paths (the old global-mutex tracer) this surfaces convoying
// that a single-threaded loop never sees.
double MeasureMulti(int64_t iters_per_thread) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  const auto worker = [&] {
    TimeLoop(iters_per_thread / 10);  // warm-up (first-touch of TLS buffers)
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    TimeLoop(iters_per_thread);
  };
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(worker);
  }
  while (ready.load() < kThreads) {
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) {
    th.join();
  }
  const auto end = std::chrono::steady_clock::now();
  const auto wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  return static_cast<double>(wall) /
         static_cast<double>(iters_per_thread * kThreads);
}

struct Result {
  double st = 0.0;  // single-threaded ns/probe
  double mt = 0.0;  // multi-threaded ns/probe (wall over total probes)
};

Result MeasurePath(bool tracing, bool enabled, bool full, int64_t iters) {
  const vprof::FuncId fid = vprof::RegisterFunction("micro_probe_fn");
  vprof::DisableAllFunctions();
  vprof::SetFunctionEnabled(fid, enabled);
  vprof::EnableFullTrace(full);
  Result r;
  if (tracing) {
    vprof::StartTracing();
  }
  r.st = MeasureSingle(iters);
  if (tracing) {
    vprof::StopTracing();
    vprof::StartTracing();
  }
  r.mt = MeasureMulti(iters / kThreads);
  if (tracing) {
    vprof::StopTracing();
  }
  vprof::EnableFullTrace(false);
  vprof::DisableAllFunctions();
  return r;
}

}  // namespace

int main() {
  bench::PrintHeader("micro_probe — probe hot path cost (ns/probe)");

  // Record volume per measured loop stays bounded (the enabled path writes
  // one Invocation per call), so keep iteration counts path-specific.
  const Result off = MeasurePath(false, false, false, 40'000'000);
  const Result disabled = MeasurePath(true, false, false, 40'000'000);
  const Result enabled = MeasurePath(true, true, false, 4'000'000);
  const Result full = MeasurePath(true, false, true, 1'000'000);

  std::printf("  %-22s %10s %10s\n", "path", "1 thread", "4 threads");
  std::printf("  %-22s %10.2f %10.2f\n", "tracing off", off.st, off.mt);
  std::printf("  %-22s %10.2f %10.2f\n", "disabled probe", disabled.st,
              disabled.mt);
  std::printf("  %-22s %10.2f %10.2f\n", "enabled probe", enabled.st,
              enabled.mt);
  std::printf("  %-22s %10.2f %10.2f\n", "full trace", full.st, full.mt);

  FILE* json = std::fopen("BENCH_probe.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "micro_probe: cannot write BENCH_probe.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"unit\": \"ns_per_probe\",\n"
               "  \"threads_mt\": %d,\n"
               "  \"off_st\": %.3f,\n"
               "  \"off_mt\": %.3f,\n"
               "  \"disabled_st\": %.3f,\n"
               "  \"disabled_mt\": %.3f,\n"
               "  \"enabled_st\": %.3f,\n"
               "  \"enabled_mt\": %.3f,\n"
               "  \"full_st\": %.3f,\n"
               "  \"full_mt\": %.3f\n"
               "}\n",
               kThreads, off.st, off.mt, disabled.st, disabled.mt, enabled.st,
               enabled.mt, full.st, full.mt);
  std::fclose(json);
  std::printf("\n  wrote BENCH_probe.json\n");
  return 0;
}
