// Chaos benchmark (ISSUE: chaos orchestration + self-healing vprofd).
// Emits BENCH_chaos.json.
//
// Three experiments:
//
//   1. Storm cost — both engines run the same TPC-C mix clean and then under
//      a composed fault storm (write-error/stall bursts from a seeded
//      ChaosOrchestrator plus kill-and-recover cycles through the
//      mid-group-commit-batch crash points). Reported: throughput and p99
//      under the storm vs clean.
//
//   2. MTTR — every kill/recover cycle is timed from the moment the crash is
//      observed to the moment recovery returns; the distribution (min /
//      mean / max over all cycles of both engines' storms) is reported.
//
//   3. Supervisor overhead — minidb serving throughput with no daemon
//      (tracing off) vs a vprofd parked in Quarantined by induced history
//      pressure: the graceful-degradation floor. Acceptance elsewhere
//      (supervisor_test) pins this within 5%; the bench reports the measured
//      percentage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/fault/chaos.h"
#include "src/fault/failpoint.h"
#include "src/statkit/rng.h"
#include "src/vprof/service/vprofd.h"
#include "src/workload/invariants.h"

namespace {

constexpr uint64_t kStormSeed = 2024;
constexpr int kLoadThreads = 4;
constexpr int kCleanTxnsPerThread = 400;
constexpr int kCrashCycles = 3;

simio::DiskConfig StormDisk(const std::string& scope) {
  simio::DiskConfig config;
  config.read_mu = 0.5;
  config.write_mu = 0.5;
  config.fsync_mu = 1.0;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 20.0;
  config.stall_us = 500.0;
  config.serialize_access = false;
  config.fault_scope = scope;
  config.seed = 31;
  return config;
}

fault::ChaosOptions StormOptions() {
  fault::ChaosOptions options;
  options.horizon_steps = 240;  // ~1 step/ms of orchestration below
  options.bursts = 5;
  options.max_overlap = 2;
  options.min_burst_steps = 10;
  options.max_burst_steps = 50;
  options.crash_cycles = 0;  // cycles are driven (and timed) by hand
  options.value_bound = 0;
  return options;
}

struct StormOutcome {
  bench::LatencyStats clean;
  bench::LatencyStats storm;
  uint64_t storm_committed = 0;
  uint64_t storm_aborted = 0;
  std::vector<double> mttr_ms;
};

// Drives the orchestrator clock at ~1 step/ms and injects kCrashCycles
// kill/recover cycles at fixed step marks, timing each recovery.
template <typename CrashedFn, typename RecoverFn>
void DriveStorm(fault::ChaosOrchestrator* chaos, const char* crash_point,
                CrashedFn crashed, RecoverFn recover,
                std::vector<double>* mttr_ms, std::atomic<bool>* stop) {
  const uint64_t horizon = StormOptions().horizon_steps;
  const uint64_t cycle_every = horizon / (kCrashCycles + 1);
  int cycles_done = 0;
  while (chaos->current_step() < horizon) {
    chaos->Step();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (cycles_done < kCrashCycles &&
        chaos->current_step() >=
            cycle_every * static_cast<uint64_t>(cycles_done + 1)) {
      fault::Activate(crash_point, fault::Trigger::OneShotWithValue(
                                       97u * (cycles_done + 1u)));
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!crashed() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      fault::Deactivate(crash_point);
      if (crashed()) {
        const auto down = std::chrono::steady_clock::now();
        recover();
        const auto up = std::chrono::steady_clock::now();
        mttr_ms->push_back(
            std::chrono::duration<double, std::milli>(up - down).count());
      }
      ++cycles_done;
    }
  }
  chaos->Finish();
  stop->store(true);
}

StormOutcome RunMinidbStorm() {
  StormOutcome out;
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 4;
  config.log_disk = StormDisk("bench_chaos_md_log");
  config.data_disk = StormDisk("bench_chaos_md_data");

  {
    minidb::Engine engine(config);
    workload::TpccDriver driver(
        &engine, bench::TpccQuick(kLoadThreads, kCleanTxnsPerThread));
    const workload::TpccResult result = driver.Run();
    out.clean = bench::ToStats(result.latencies_ns, result.throughput_tps);
  }

  minidb::Engine engine(config);
  engine.redo_log().set_crash_seed(kStormSeed);
  fault::ChaosTargets targets;
  targets.faults = {"bench_chaos_md_log/write_error",
                    "bench_chaos_md_log/stall",
                    "bench_chaos_md_data/read_error"};
  fault::ChaosOrchestrator chaos(kStormSeed, targets, StormOptions());

  std::atomic<bool> stop{false};
  std::thread orchestrator([&] {
    DriveStorm(
        &chaos, "redo/crash_mid_batch",
        [&] { return engine.redo_log().crashed(); },
        [&] { engine.redo_log().Recover(); }, &out.mttr_ms, &stop);
  });
  workload::TpccDriver driver(&engine,
                              bench::TpccQuick(kLoadThreads, 1 << 20));
  const workload::TpccResult result = driver.RunUntil(stop);
  orchestrator.join();
  out.storm = bench::ToStats(result.latencies_ns, result.throughput_tps);
  out.storm_committed = result.committed;
  out.storm_aborted = result.aborted;

  engine.Stop();
  const workload::InvariantResult balance =
      workload::CheckBalanceConservation(engine);
  if (!balance.ok) {
    std::fprintf(stderr, "chaos: minidb invariant violated: %s\n",
                 balance.detail.c_str());
    std::exit(1);
  }
  return out;
}

StormOutcome RunMinipgStorm() {
  StormOutcome out;
  minipg::PgConfig config;
  config.wal_units = 2;
  config.wal_disk = StormDisk("bench_chaos_pg_wal");

  {
    minipg::PgEngine engine(config);
    workload::TpccDriver driver(
        nullptr, bench::TpccQuick(kLoadThreads, kCleanTxnsPerThread));
    const workload::TpccResult result = driver.RunWith(
        [&engine](const minidb::TxnRequest& r) { return engine.Execute(r); },
        8);
    out.clean = bench::ToStats(result.latencies_ns, result.throughput_tps);
  }

  minipg::PgEngine engine(config);
  for (int i = 0; i < config.wal_units; ++i) {
    engine.wal().unit(i).set_crash_seed(kStormSeed + static_cast<uint64_t>(i));
  }
  fault::ChaosTargets targets;
  targets.faults = {"bench_chaos_pg_wal.0/write_error",
                    "bench_chaos_pg_wal.1/write_error",
                    "bench_chaos_pg_wal.0/stall"};
  fault::ChaosOrchestrator chaos(kStormSeed + 1, targets, StormOptions());

  const auto any_crashed = [&] {
    for (int i = 0; i < config.wal_units; ++i) {
      if (engine.wal().unit(i).crashed()) {
        return true;
      }
    }
    return false;
  };
  std::atomic<bool> stop{false};
  std::thread orchestrator([&] {
    DriveStorm(
        &chaos, "wal/crash_mid_batch", any_crashed,
        [&] {
          for (int i = 0; i < config.wal_units; ++i) {
            if (engine.wal().unit(i).crashed()) {
              engine.wal().unit(i).Recover();
            }
          }
        },
        &out.mttr_ms, &stop);
  });
  workload::TpccDriver driver(nullptr,
                              bench::TpccQuick(kLoadThreads, 1 << 20));
  const workload::TpccResult result = driver.RunTypedUntil(
      [&engine](const minidb::TxnRequest& r) {
        minidb::TxnOutcome outcome;
        outcome.committed = engine.Execute(r);
        return outcome;
      },
      8, stop);
  orchestrator.join();
  out.storm = bench::ToStats(result.latencies_ns, result.throughput_tps);
  out.storm_committed = result.committed;
  out.storm_aborted = result.aborted;
  engine.Stop();
  return out;
}

struct SupervisorOverhead {
  double baseline_tps = 0.0;
  double quarantined_tps = 0.0;
  double overhead_pct = 0.0;
};

SupervisorOverhead RunSupervisorOverhead() {
  SupervisorOverhead out;
  minidb::EngineConfig config = minidb::EngineConfig::MemoryResident();
  config.warehouses = 2;
  config.log_disk.fsync_spike_prob = 0.0;
  minidb::Engine engine(config);

  constexpr int kTxns = 2000;
  const auto measure_tps = [&engine](uint64_t seed) {
    workload::TpccGenerator generator(workload::TpccOptions{}, 2);
    statkit::Rng rng(seed);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTxns; ++i) {
      engine.Execute(generator.Next(rng));
    }
    const auto t1 = std::chrono::steady_clock::now();
    return kTxns / std::chrono::duration<double>(t1 - t0).count();
  };
  const auto best_of = [&measure_tps](int trials, uint64_t seed_base) {
    double best = 0.0;
    for (int i = 0; i < trials; ++i) {
      best = std::max(best, measure_tps(seed_base + i));
    }
    return best;
  };

  measure_tps(1);  // warm-up
  out.baseline_tps = best_of(3, 10);

  const std::string dir = std::filesystem::temp_directory_path() /
                          "bench_chaos_quarantine_history";
  std::filesystem::remove_all(dir);
  vprof::VprofdOptions options;
  options.enable_controller = false;
  options.epoch_ns = 2'000'000;
  options.history.dir = dir;
  options.history.fault_scope = "bench_chaos_hist";
  options.enable_supervisor = true;
  options.supervisor.escalate_after = 1;
  options.supervisor.restore_after = 1'000'000;  // park in Quarantined
  options.supervisor.degraded_epoch_multiplier = 1.0;

  fault::Activate("bench_chaos_hist/write_error", fault::Trigger::Always());
  auto daemon = minidb::Engine::StartOnlineProfiler(std::move(options));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon->supervisor_state() != vprof::SupervisorState::kQuarantined &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  fault::Deactivate("bench_chaos_hist/write_error");
  if (daemon->supervisor_state() != vprof::SupervisorState::kQuarantined) {
    std::fprintf(stderr, "chaos: supervisor never reached quarantine\n");
    std::exit(1);
  }

  out.quarantined_tps = best_of(3, 20);
  daemon->Stop();
  std::filesystem::remove_all(dir);

  out.overhead_pct = out.baseline_tps > 0.0
                         ? 100.0 * (1.0 - out.quarantined_tps /
                                              out.baseline_tps)
                         : 0.0;
  return out;
}

struct MttrSummary {
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  size_t cycles = 0;
};

MttrSummary SummarizeMttr(const std::vector<double>& samples) {
  MttrSummary s;
  s.cycles = samples.size();
  if (samples.empty()) {
    return s;
  }
  s.min_ms = *std::min_element(samples.begin(), samples.end());
  s.max_ms = *std::max_element(samples.begin(), samples.end());
  for (double v : samples) {
    s.mean_ms += v;
  }
  s.mean_ms /= static_cast<double>(samples.size());
  return s;
}

void EmitJson(const StormOutcome& md, const StormOutcome& pg,
              const SupervisorOverhead& sup) {
  FILE* json = std::fopen("BENCH_chaos.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "chaos: cannot write BENCH_chaos.json\n");
    std::exit(1);
  }
  const auto emit_engine = [json](const char* name, const StormOutcome& out,
                                  bool trailing_comma) {
    std::fprintf(json, "    \"%s\": {\n", name);
    std::fprintf(json,
                 "      \"clean\": {\"throughput_tps\": %.1f, \"p99_ms\": "
                 "%.4f},\n",
                 out.clean.throughput, out.clean.p99_ms);
    std::fprintf(json,
                 "      \"storm\": {\"throughput_tps\": %.1f, \"p99_ms\": "
                 "%.4f, \"committed\": %llu, \"aborted\": %llu},\n",
                 out.storm.throughput, out.storm.p99_ms,
                 static_cast<unsigned long long>(out.storm_committed),
                 static_cast<unsigned long long>(out.storm_aborted));
    std::fprintf(json, "      \"mttr_ms\": [");
    for (size_t i = 0; i < out.mttr_ms.size(); ++i) {
      std::fprintf(json, "%s%.3f", i == 0 ? "" : ", ", out.mttr_ms[i]);
    }
    const MttrSummary mttr = SummarizeMttr(out.mttr_ms);
    std::fprintf(json, "],\n");
    std::fprintf(json,
                 "      \"mttr\": {\"cycles\": %zu, \"min_ms\": %.3f, "
                 "\"mean_ms\": %.3f, \"max_ms\": %.3f}\n",
                 mttr.cycles, mttr.min_ms, mttr.mean_ms, mttr.max_ms);
    std::fprintf(json, "    }%s\n", trailing_comma ? "," : "");
  };
  std::fprintf(json, "{\n  \"benchmark\": \"chaos\",\n");
  std::fprintf(json, "  \"storm_seed\": %llu,\n",
               static_cast<unsigned long long>(kStormSeed));
  std::fprintf(json, "  \"engines\": {\n");
  emit_engine("minidb", md, true);
  emit_engine("minipg", pg, false);
  std::fprintf(json, "  },\n");
  std::fprintf(json, "  \"supervisor\": {\n");
  std::fprintf(json, "    \"baseline_tps\": %.1f,\n", sup.baseline_tps);
  std::fprintf(json, "    \"quarantined_tps\": %.1f,\n", sup.quarantined_tps);
  std::fprintf(json, "    \"quarantine_overhead_pct\": %.2f\n",
               sup.overhead_pct);
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Chaos: fault storms, MTTR, and supervised degradation overhead");

  std::printf("\nminidb under storm (seed %llu):\n",
              static_cast<unsigned long long>(kStormSeed));
  const StormOutcome md = RunMinidbStorm();
  bench::PrintStatsRow("clean", md.clean);
  bench::PrintStatsRow("storm", md.storm);
  const MttrSummary md_mttr = SummarizeMttr(md.mttr_ms);
  std::printf("  MTTR over %zu cycles: min=%.2f ms  mean=%.2f ms  max=%.2f ms\n",
              md_mttr.cycles, md_mttr.min_ms, md_mttr.mean_ms, md_mttr.max_ms);

  std::printf("\nminipg under storm:\n");
  const StormOutcome pg = RunMinipgStorm();
  bench::PrintStatsRow("clean", pg.clean);
  bench::PrintStatsRow("storm", pg.storm);
  const MttrSummary pg_mttr = SummarizeMttr(pg.mttr_ms);
  std::printf("  MTTR over %zu cycles: min=%.2f ms  mean=%.2f ms  max=%.2f ms\n",
              pg_mttr.cycles, pg_mttr.min_ms, pg_mttr.mean_ms, pg_mttr.max_ms);

  std::printf("\nsupervised degradation floor (vprofd quarantined):\n");
  const SupervisorOverhead sup = RunSupervisorOverhead();
  std::printf("  baseline    %8.1f tps (no daemon, tracing off)\n",
              sup.baseline_tps);
  std::printf("  quarantined %8.1f tps (daemon parked in Quarantine)\n",
              sup.quarantined_tps);
  std::printf("  overhead    %8.2f %%\n", sup.overhead_pct);

  EmitJson(md, pg, sup);
  std::printf("  wrote BENCH_chaos.json\n");
  return 0;
}
