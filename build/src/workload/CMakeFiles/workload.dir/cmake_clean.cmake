file(REMOVE_RECURSE
  "CMakeFiles/workload.dir/ab.cc.o"
  "CMakeFiles/workload.dir/ab.cc.o.d"
  "CMakeFiles/workload.dir/tpcc.cc.o"
  "CMakeFiles/workload.dir/tpcc.cc.o.d"
  "libworkload.a"
  "libworkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
