// Reusable crash/chaos invariants.
//
// Every chaos test in this repository checks the same four properties after
// a storm; they live here so the single-threaded determinism sweep, the
// multi-threaded storm test, and the chaos bench all assert identical
// semantics:
//
//   1. Acked-commit-prefix durability — no commit acknowledged under the
//      eager policy may be lost by a crash+recover cycle.
//   2. Balance conservation — the TPC-C value transfers are zero-sum, so the
//      sum of every balance in a quiesced minidb engine is exactly 0 no
//      matter which transactions aborted, retried, or died mid-storm.
//   3. StatStore bit-exact replay — sealing and reopening a store yields the
//      same series, epochs, and bit-identical values as querying the live
//      store.
//   4. No stuck threads after quiesce — every worker joins within a bounded
//      wall-clock deadline (catches followers left sleeping on a
//      flush-round event).
//
// Checks return an InvariantResult rather than asserting, so callers can
// aggregate failures across seeds and report which seed broke what.
#ifndef SRC_WORKLOAD_INVARIANTS_H_
#define SRC_WORKLOAD_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/minidb/engine.h"
#include "src/statstore/store.h"

namespace workload {

struct InvariantResult {
  bool ok = true;
  std::string detail;  // human-readable failure description, empty when ok
};

// 1. Every LSN acknowledged as durable before the crash must survive
// recovery: recovered_lsn >= max_acked_lsn.
InvariantResult CheckAckedPrefixDurable(uint64_t max_acked_lsn,
                                        uint64_t recovered_lsn);

// 2. Zero-sum transfers: the sum of all row balances across every table of a
// quiesced engine is 0. Call with no transactions in flight.
InvariantResult CheckBalanceConservation(const minidb::Engine& engine);

// Order-independent digest over every series/epoch/value in the store,
// via ListSeries + Query. Bit-exact: the value's IEEE-754 bits feed the
// digest, not a rounded rendering.
uint64_t StatStoreDigest(const statstore::StatStore& store);

// 3. Seals `store`, digests it live, then reopens the same directory with a
// fresh StatStore and compares digests. The seal makes the comparison safe:
// a second reader must never truncate a tail the live store still owns.
InvariantResult CheckStatStoreBitExactReplay(statstore::StatStore* store);

// 4. Joins every thread, failing if they do not all finish within
// `timeout_ms`. On timeout the stuck threads (and the internal joiner) are
// leaked — the caller is a test that is about to fail anyway.
InvariantResult CheckThreadsJoin(std::vector<std::thread>* threads,
                                 int timeout_ms);

}  // namespace workload

#endif  // SRC_WORKLOAD_INVARIANTS_H_
