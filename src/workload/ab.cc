#include "src/workload/ab.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "src/simio/disk.h"
#include "src/statkit/rng.h"

namespace workload {

AbDriver::AbDriver(httpd::HttpServer* server, const AbOptions& options)
    : server_(server), options_(options) {}

AbResult AbDriver::Run() { return RunLoop(nullptr); }

AbResult AbDriver::RunUntil(const std::atomic<bool>& stop) {
  return RunLoop(&stop);
}

AbResult AbDriver::RunLoop(const std::atomic<bool>* stop) {
  AbResult result;
  std::mutex result_mu;
  const auto run_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options_.clients));
  for (int c = 0; c < options_.clients; ++c) {
    clients.emplace_back([&, c] {
      statkit::Rng rng(options_.seed * 7907 + static_cast<uint64_t>(c));
      std::vector<double> local;
      local.reserve(static_cast<size_t>(options_.requests_per_client));
      uint64_t local_rejected = 0;
      for (int i = 0; stop != nullptr
                          ? !stop->load(std::memory_order_acquire)
                          : i < options_.requests_per_client;
           ++i) {
        const uint64_t file_id = rng.NextBelow(server_->config().file_count);
        const auto t0 = std::chrono::steady_clock::now();
        const httpd::RequestStatus status =
            server_->HandleRequestBlocking(file_id);
        const auto t1 = std::chrono::steady_clock::now();
        if (status == httpd::RequestStatus::kOk) {
          local.push_back(
              std::chrono::duration<double, std::nano>(t1 - t0).count());
        } else {
          ++local_rejected;
        }
        if (options_.think_time_us > 0.0) {
          simio::SleepUs(options_.think_time_us);
        }
      }
      std::lock_guard<std::mutex> lock(result_mu);
      result.latencies_ns.insert(result.latencies_ns.end(), local.begin(),
                                 local.end());
      result.completed += local.size();
      result.rejected += local_rejected;
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  const auto run_end = std::chrono::steady_clock::now();
  result.duration_s = std::chrono::duration<double>(run_end - run_start).count();
  result.requests_per_s =
      result.duration_s > 0.0
          ? static_cast<double>(result.completed) / result.duration_s
          : 0.0;
  return result;
}

}  // namespace workload
