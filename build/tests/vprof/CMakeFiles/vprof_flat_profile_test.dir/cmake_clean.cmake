file(REMOVE_RECURSE
  "CMakeFiles/vprof_flat_profile_test.dir/flat_profile_test.cc.o"
  "CMakeFiles/vprof_flat_profile_test.dir/flat_profile_test.cc.o.d"
  "vprof_flat_profile_test"
  "vprof_flat_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_flat_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
