#include "src/vprof/service/vprofd.h"

#include <sstream>
#include <utility>

#include "src/vprof/registry.h"

namespace vprof {

namespace {

HarvesterOptions MakeHarvesterOptions(Vprofd* daemon, TimeNs epoch_ns,
                                      void (Vprofd::*handler)(Trace&&)) {
  HarvesterOptions options;
  options.epoch_ns = epoch_ns;
  options.sink = [daemon, handler](Trace&& trace) {
    (daemon->*handler)(std::move(trace));
  };
  return options;
}

}  // namespace

Vprofd::Vprofd(VprofdOptions options)
    : options_(std::move(options)),
      root_(RegisterFunction(options_.root_function)),
      tree_(options_.tree),
      controller_(root_, options_.graph.get(), options_.controller),
      harvester_(MakeHarvesterOptions(this, options_.epoch_ns,
                                      &Vprofd::HandleEpoch)) {
  // Without a call graph the controller has nothing to descend into; run
  // as a pure aggregator instead of crashing on the first step.
  if (!options_.graph) options_.enable_controller = false;
}

Vprofd::~Vprofd() { Stop(); }

void Vprofd::Start() {
  if (harvester_.running()) return;
  if (options_.enable_controller) controller_.ApplyInstrumentation();
  harvester_.Start();
}

void Vprofd::Stop() { harvester_.Stop(); }

void Vprofd::HandleEpoch(Trace&& trace) {
  tree_.Fold(trace);
  if (options_.enable_controller) controller_.Step(tree_.Snapshot());
}

std::string Vprofd::MetricsText() const {
  const OnlineTreeSnapshot snapshot = Snapshot();
  const ControllerStatus status = controller_status();
  std::ostringstream out;
  out << snapshot.ToPromText();
  out << "# HELP vprofd_harvest_epochs_total Epochs rotated by the "
         "harvester.\n"
      << "# TYPE vprofd_harvest_epochs_total counter\n"
      << "vprofd_harvest_epochs_total " << epochs() << "\n";
  out << "# HELP vprofd_rotation_gap_ns Tracing-off time of the latest "
         "epoch rotation.\n"
      << "# TYPE vprofd_rotation_gap_ns gauge\n"
      << "vprofd_rotation_gap_ns " << last_gap_ns() << "\n";
  out << "# HELP vprofd_rotation_gap_max_ns Worst tracing-off rotation "
         "gap seen.\n"
      << "# TYPE vprofd_rotation_gap_max_ns gauge\n"
      << "vprofd_rotation_gap_max_ns " << max_gap_ns() << "\n";
  out << "# HELP vprofd_rotation_gap_total_ns Cumulative tracing-off time "
         "across all rotations.\n"
      << "# TYPE vprofd_rotation_gap_total_ns counter\n"
      << "vprofd_rotation_gap_total_ns " << total_gap_ns() << "\n";
  out << "# HELP vprofd_controller_steps_total Refinement steps taken.\n"
      << "# TYPE vprofd_controller_steps_total counter\n"
      << "vprofd_controller_steps_total " << status.steps << "\n";
  out << "# HELP vprofd_controller_expansions_total Factors expanded into "
         "their callees.\n"
      << "# TYPE vprofd_controller_expansions_total counter\n"
      << "vprofd_controller_expansions_total " << status.expansions << "\n";
  out << "# HELP vprofd_controller_retirements_total Expanded functions "
         "retired for low contribution.\n"
      << "# TYPE vprofd_controller_retirements_total counter\n"
      << "vprofd_controller_retirements_total " << status.retirements << "\n";
  out << "# HELP vprofd_controller_stable_steps Consecutive steps with no "
         "instrumentation change.\n"
      << "# TYPE vprofd_controller_stable_steps gauge\n"
      << "vprofd_controller_stable_steps " << status.stable_steps << "\n";
  out << "# HELP vprofd_instrumented_probes Probes currently enabled by "
         "the controller.\n"
      << "# TYPE vprofd_instrumented_probes gauge\n"
      << "vprofd_instrumented_probes " << status.instrumented.size() << "\n";
  return out.str();
}

}  // namespace vprof
