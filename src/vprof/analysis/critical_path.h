// Backwards critical-path construction for semantic intervals
// (paper Figure 2 and Algorithm 2).
//
// Starting at the segment containing an interval's end annotation, the walk
// proceeds backwards in time: same-interval executing segments join the path;
// blocked segments divert the walk into the waker thread for the blocked
// span; created-by edges divert it into the producer thread and account the
// enqueue-to-dequeue gap as queueing delay. The walk stops at the interval's
// creation timestamp. The result is a set of (thread, time-window) spans on
// the critical path plus categorized wait time.
#ifndef SRC_VPROF_ANALYSIS_CRITICAL_PATH_H_
#define SRC_VPROF_ANALYSIS_CRITICAL_PATH_H_

#include <functional>
#include <string>
#include <vector>

#include "src/vprof/trace.h"
#include "src/vprof/types.h"

namespace vprof {

// A span of on-critical-path execution on one thread.
struct PathWindow {
  ThreadId tid = kNoThread;
  TimeNs lo = 0;
  TimeNs hi = 0;
};

// Critical-path decomposition of one semantic interval.
struct IntervalBreakdown {
  IntervalId sid = kNoInterval;
  TimeNs begin_time = 0;
  TimeNs end_time = 0;
  std::vector<PathWindow> windows;

  // Wait time (ns) on the critical path that could not be attributed to
  // another thread's execution.
  double queue_wait_ns = 0.0;      // enqueue -> dequeue gaps
  double blocked_wait_ns = 0.0;    // blocked with no usable wake-up edge
  double descheduled_ns = 0.0;     // thread ran other work between segments

  double latency_ns() const {
    return static_cast<double>(end_time - begin_time);
  }
};

struct CriticalPathOptions {
  // Maximum depth of nested waker-chain recursion.
  int max_waker_depth = 8;

  // Optional: returns true when an instrumented function invocation on
  // `tid` covers the window [lo, hi]. When a *target-interval* blocked
  // segment is covered (e.g. a lock wait inside os_event_wait), its time is
  // attributed to that function — the paper's convention, which is what
  // lets Table 4 report os_event_wait as a variance factor. Uncovered
  // blocked segments fall back to the wake-up-edge jump into the waker
  // thread (essential for cross-thread handoffs with no instrumented wait).
  std::function<bool(ThreadId tid, TimeNs lo, TimeNs hi)> has_coverage;

  // Optional: analyze only intervals whose begin annotation carried this
  // label (per-request-type profiles). kNoLabel (with filter_by_label=false)
  // analyzes everything.
  bool filter_by_label = false;
  IntervalLabel label_filter = kNoLabel;

  // Optional: the name of a registered function that receives each
  // interval's critical-path queue wait (enqueue-to-dequeue gaps and
  // kQueueWait segments) as a leaf node under the synthetic root. Queueing
  // delay otherwise lands in the root's "(other)" body residual, which
  // factor selection skips — naming it makes accept-queue / dispatch wait a
  // first-class variance factor (the network front-end sets this to
  // net::kQueueWaitFactor). Consumed by VarianceAnalysis, not the walker;
  // ignored when the name was never registered during the run.
  std::string queue_wait_factor;
};

// Index of a Trace by thread, with time-ordered binary search helpers.
class TraceIndex {
 public:
  explicit TraceIndex(const Trace& trace);

  const Trace& trace() const { return *trace_; }

  // Thread trace for tid, or nullptr.
  const ThreadTrace* Thread(ThreadId tid) const;

  // Index of the last segment on tid with start < t, or -1.
  int LastSegmentBefore(ThreadId tid, TimeNs t) const;

  // All semantic intervals that have both begin and end events, ordered by
  // interval id.
  struct IntervalInfo {
    IntervalId sid = kNoInterval;
    TimeNs begin_time = 0;
    TimeNs end_time = 0;
    ThreadId begin_tid = kNoThread;
    ThreadId end_tid = kNoThread;
    IntervalLabel label = kNoLabel;
    // Which annotations were actually observed. A truncated trace (arena
    // cap, quarantined thread) can contain either event alone; only
    // intervals with both are analyzable.
    bool has_begin = false;
    bool has_end = false;
  };
  const std::vector<IntervalInfo>& Intervals() const { return intervals_; }

 private:
  const Trace* trace_;
  std::vector<int> tid_to_index_;  // tid -> position in trace_->threads
  std::vector<IntervalInfo> intervals_;
};

// Builds breakdowns for every completed interval in the trace.
std::vector<IntervalBreakdown> BuildBreakdowns(
    const TraceIndex& index, const CriticalPathOptions& options = {});

// Builds the breakdown of a single interval.
IntervalBreakdown BuildBreakdown(const TraceIndex& index,
                                 const TraceIndex::IntervalInfo& info,
                                 const CriticalPathOptions& options = {});

}  // namespace vprof

#endif  // SRC_VPROF_ANALYSIS_CRITICAL_PATH_H_
