# Empty dependencies file for vprof_registry_test.
# This may be replaced when dependencies are built.
