// Volcano-style plan-node executor modeled on Postgres's ExecProcNode
// dispatch. Plans are small trees whose shape and row counts vary per
// transaction type; that plan-shape variability is precisely the (inherent)
// variance the paper's Table 6 attributes to ExecProcNode (5%, no single
// child dominating).
#ifndef SRC_MINIPG_EXECUTOR_H_
#define SRC_MINIPG_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/minipg/predicate_locks.h"
#include "src/minipg/wal.h"
#include "src/statkit/rng.h"

namespace minipg {

enum class PlanNodeType {
  kSeqScan,
  kIndexScan,
  kModifyTable,
  kNestLoop,
  kAgg,
};

struct PlanNode {
  PlanNodeType type = PlanNodeType::kSeqScan;
  int64_t rows = 1;               // tuples this node processes
  uint64_t table_base = 0;        // object-id namespace for predicate locks
  std::vector<std::unique_ptr<PlanNode>> children;

  static std::unique_ptr<PlanNode> Make(PlanNodeType type, int64_t rows,
                                        uint64_t table_base) {
    auto node = std::make_unique<PlanNode>();
    node->type = type;
    node->rows = rows;
    node->table_base = table_base;
    return node;
  }
};

// Per-transaction execution state threaded through the plan.
struct ExecContext {
  uint64_t txn_id = 0;
  statkit::Rng* rng = nullptr;
  std::vector<uint64_t> read_objects;   // SIREAD locks taken
  uint64_t wal_bytes = 0;               // redo volume produced by writes
  int conflicts = 0;
};

class Executor {
 public:
  Executor(PredicateLockManager* predicate_locks, bool serializable)
      : predicate_locks_(predicate_locks), serializable_(serializable) {}

  // Recursive dispatch (instrumented as ExecProcNode). Returns the number of
  // tuples produced.
  int64_t ExecProcNode(const PlanNode& node, ExecContext* context);

 private:
  int64_t ExecSeqScan(const PlanNode& node, ExecContext* context);
  int64_t ExecIndexScan(const PlanNode& node, ExecContext* context);
  int64_t ExecModifyTable(const PlanNode& node, ExecContext* context);
  int64_t ExecNestLoop(const PlanNode& node, ExecContext* context);
  int64_t ExecAgg(const PlanNode& node, ExecContext* context);

  // Simulated per-tuple work (predicate evaluation, tuple deforming).
  static void TupleWork(int tuples);

  PredicateLockManager* predicate_locks_;
  bool serializable_;
};

}  // namespace minipg

#endif  // SRC_MINIPG_EXECUTOR_H_
