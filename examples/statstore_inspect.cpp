// statstore_inspect: command-line reader for a vprofd history directory.
//
//   statstore_inspect <dir>                      store summary + series list
//   statstore_inspect <dir> <series> [min [max]] decoded points of one series
//   statstore_inspect <dir> --top [epoch-count]  factors ranked by mean share
//                                                over the last N epochs
//
// Works on a live daemon's directory (reads never block the append path)
// and on a directory left behind by a crashed one — Open() recovers the
// torn tail exactly like the daemon would.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <vector>

#include "src/statstore/store.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dir>                      summary + series\n"
               "       %s <dir> <series> [min [max]] dump one series\n"
               "       %s <dir> --top [epochs]       top factors by share\n",
               argv0, argv0, argv0);
  return 2;
}

void PrintSummary(const statstore::StatStore& store) {
  const statstore::StoreStats stats = store.stats();
  std::printf("store: %s\n", store.options().dir.c_str());
  std::printf("  epochs    %" PRIu64 " .. %" PRIu64 "  (%" PRIu64
              " records)\n",
              store.first_epoch(), store.last_epoch(), store.record_count());
  std::printf("  segments  %" PRIu64 "  (%.1f KiB on disk)\n",
              store.segment_count(),
              static_cast<double>(store.disk_bytes()) / 1024.0);
  if (stats.recovered_records > 0 || stats.truncated_bytes > 0) {
    std::printf("  recovery  %" PRIu64 " records replayed, %" PRIu64
                " torn bytes truncated, %" PRIu64 " segments dropped\n",
                stats.recovered_records, stats.truncated_bytes,
                stats.dropped_segments);
  }
  const std::vector<std::string> series = store.ListSeries();
  std::printf("  series    %zu\n", series.size());
  for (const std::string& name : series) {
    std::printf("    %s\n", name.c_str());
  }
}

void PrintSeries(const statstore::StatStore& store, const std::string& series,
                 uint64_t min_epoch, uint64_t max_epoch) {
  const std::vector<statstore::SeriesPoint> points =
      store.Query(series, min_epoch, max_epoch);
  std::printf("%s: %zu points\n", series.c_str(), points.size());
  for (const statstore::SeriesPoint& p : points) {
    std::printf("  %8" PRIu64 "  %.17g\n", p.epoch, p.value);
  }
}

// Ranks node share streams by their mean over the trailing `window` epochs —
// the offline counterpart of the regression detector's live view.
void PrintTopFactors(const statstore::StatStore& store, uint64_t window) {
  const uint64_t last = store.last_epoch();
  const uint64_t min_epoch = last > window ? last - window + 1 : 0;
  struct Row {
    double mean_share;
    std::string series;
  };
  std::vector<Row> rows;
  for (const std::string& name : store.ListSeries()) {
    if (name.rfind("node:", 0) != 0 ||
        name.rfind(":share") != name.size() - 6) {
      continue;
    }
    const std::vector<statstore::SeriesPoint> points =
        store.Query(name, min_epoch, last);
    if (points.empty()) continue;
    double sum = 0.0;
    for (const statstore::SeriesPoint& p : points) sum += p.value;
    rows.push_back({sum / static_cast<double>(points.size()), name});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) {
              return a.mean_share > b.mean_share;
            });
  std::printf("top variance factors, epochs %" PRIu64 "..%" PRIu64 ":\n",
              min_epoch, last);
  for (const Row& row : rows) {
    std::printf("  %6.1f%%  %s\n", row.mean_share * 100.0,
                row.series.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);

  statstore::StoreOptions options;
  options.dir = argv[1];
  statstore::StatStore store(options);
  if (!store.Open()) {
    std::fprintf(stderr, "statstore_inspect: cannot open %s\n", argv[1]);
    return 1;
  }
  if (store.record_count() == 0) {
    std::fprintf(stderr, "statstore_inspect: %s holds no records\n", argv[1]);
    return 1;
  }

  if (argc == 2) {
    PrintSummary(store);
  } else if (std::strcmp(argv[2], "--top") == 0) {
    const uint64_t window =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;
    PrintTopFactors(store, window == 0 ? 64 : window);
  } else {
    const uint64_t min_epoch =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0;
    const uint64_t max_epoch =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : UINT64_MAX;
    PrintSeries(store, argv[2], min_epoch, max_epoch);
  }
  return 0;
}
