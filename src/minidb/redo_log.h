// Redo log with leader-based group commit and the three durability policies
// of innodb_flush_log_at_trx_commit (paper Section 4.5, Figure 4 center).
//
//   kEager:     every commit waits until its LSN is written and fsync'd.
//               Under CommitMode::kGroupCommit one elected leader performs a
//               single write+fsync for the whole pending batch; followers
//               wait on an os_event-style vprof::Event. Under
//               CommitMode::kExclusive every committer performs its own
//               write+fsync serialized on the log I/O mutex — the
//               pre-scale-out baseline whose throughput is capped at one
//               fsync per commit. fil_flush — the fsync — is the
//               instrumented high-variance I/O function of Table 4.
//   kLazyFlush: commits write the log buffer but leave the fsync to the
//               background flusher thread (risking recent commits on crash).
//   kLazyWrite: commits return immediately; the flusher writes and syncs.
//
// Group-commit leader election: committers whose LSN is not yet durable take
// mu_; the first to find no flush in progress becomes leader, drains the
// insert buffer, and performs one write+fsync batch. Followers record the
// current flush round and wait on one of two ping-pong events indexed by
// round parity: the leader finishing round R resets the event for round R+1
// and then sets the event for round R (InnoDB os_event + sig_count style),
// so a follower can never miss its wake-up — Set wakes current and future
// waiters until Reset, and a bounded WaitFor backstops the one race where a
// follower observes two full rounds without running. Followers re-check
// flushed_lsn on every wake, so spurious wake-ups are harmless.
//
// Fault model: every record carries a checksum, and the log can Crash() and
// Recover(). A crash (explicit, or injected via the commit-path failpoints
// "redo/crash_before_write", "redo/crash_after_write",
// "redo/crash_after_fsync", "redo/crash_mid_batch" — the last with an
// optional trigger value giving the byte offset into the batch that reached
// the device cache before the kill) freezes the log: buffered records are
// lost, and
// the written-but-unsynced tail survives only as a seeded-random prefix whose
// last record may be torn (bad checksum). Recover() scans the device image,
// truncates at the first checksum mismatch, and re-opens the log at the
// recovered LSN. Durability contract per policy: under kEager an
// acknowledged CommitUpTo(lsn) == kOk is never lost; under the lazy policies
// at most the records since the last background flush are lost. These
// invariants are CommitMode-independent: a batch is written in LSN order, so
// recovery always exposes a prefix of whole records, never a torn batch
// interior.
//
// fsyncgate: a FAILED fsync wedges the log (kWedged). The kernel drops dirty
// pages on fsync error, so the whole unsynced window is gone; were the log to
// stay open, a later successful fsync would silently ack commits whose
// records never reached stable storage. A wedged log fails every commit until
// Recover(), which truncates to the durable prefix exactly as after a crash.
//
// Statistics are relaxed atomics aggregated in stats(): the commit hot path
// takes no stats lock.
#ifndef SRC_MINIDB_REDO_LOG_H_
#define SRC_MINIDB_REDO_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/minidb/config.h"
#include "src/simio/disk.h"
#include "src/vprof/sync.h"

namespace minidb {

struct RedoLogStats {
  uint64_t appends = 0;
  uint64_t commit_waits = 0;   // commits that waited for another's flush
  uint64_t leader_flushes = 0;
  uint64_t background_flushes = 0;
  uint64_t batched_records = 0;  // records written to the device by flushes
  uint64_t io_errors = 0;      // disk errors surfaced on the flush path
  uint64_t wedges = 0;         // failed fsyncs that wedged the log
  uint64_t crashes = 0;
};

// Outcome of a durability request.
enum class LogStatus : uint8_t {
  kOk,        // durable per the active policy
  kIoError,   // the log device failed the write; nothing landed — retryable
  kWedged,    // a failed fsync dropped the unsynced window (fsyncgate);
              // every commit fails until Recover()
  kCrashed,   // the log crashed; Recover() required
  kShutdown,  // the log was shut down; no further commits
};

// One log record as recovery sees it.
struct LogRecord {
  uint64_t end_lsn = 0;  // LSN of the record's last byte
  uint64_t bytes = 0;
  uint32_t checksum = 0;
};

// Checksum over a record's header fields; recovery verifies it to detect
// torn tails.
uint32_t LogRecordChecksum(uint64_t end_lsn, uint64_t bytes);

struct RecoveryResult {
  uint64_t recovered_lsn = 0;        // log tail after truncation
  uint64_t records_recovered = 0;    // records that passed checksum
  uint64_t torn_truncated = 0;       // device-tail records dropped by checksum
  uint64_t records_lost = 0;         // records that never survived the crash
};

class RedoLog {
 public:
  RedoLog(FlushPolicy policy, simio::Disk* disk, double flusher_period_us,
          CommitMode mode = CommitMode::kGroupCommit);
  ~RedoLog();

  RedoLog(const RedoLog&) = delete;
  RedoLog& operator=(const RedoLog&) = delete;

  // Appends `bytes` of redo to the log buffer; returns the record's LSN.
  // Returns 0 (no record) while the log is crashed.
  uint64_t Append(uint64_t bytes);

  // Makes the log durable up to `lsn` according to the policy
  // (log_write_up_to). Blocks only under kEager. kOk from the eager policy
  // is the durability acknowledgment the recovery invariants protect.
  LogStatus CommitUpTo(uint64_t lsn);

  // Simulates a process/device crash: freezes the log (subsequent Append
  // returns 0 and CommitUpTo returns kCrashed), drops buffered records, and
  // keeps only a `seed`-deterministic prefix of the written-but-unsynced
  // tail, possibly ending in a torn (bad-checksum) record.
  void Crash(uint64_t seed);

  // Replays the device image: verifies checksums, truncates the torn tail,
  // and re-opens the log at the recovered LSN. Requires crashed() or
  // wedged(); clears both.
  RecoveryResult Recover();

  // Graceful shutdown: refuses new Append/CommitUpTo (kShutdown), stops the
  // background flusher, and performs one final write+fsync of the pending
  // batch (unless crashed/wedged). Committers already inside CommitUpTo
  // drain normally — they elect leaders, flush, and collect their kOk acks —
  // because the shutdown gate is only at the entry points. Idempotent.
  void Shutdown();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  bool wedged() const { return wedged_.load(std::memory_order_acquire); }
  bool shutdown() const { return shutdown_.load(std::memory_order_acquire); }

  // Seed for crashes injected via the redo/crash_* failpoints.
  void set_crash_seed(uint64_t seed) {
    crash_seed_.store(seed, std::memory_order_relaxed);
  }

  CommitMode commit_mode() const { return mode_; }

  uint64_t flushed_lsn() const { return flushed_lsn_.load(std::memory_order_acquire); }
  uint64_t written_lsn() const { return written_lsn_.load(std::memory_order_acquire); }
  uint64_t next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }

  // Device-image introspection for recovery tests.
  size_t device_record_count() const;
  size_t durable_record_count() const;

  RedoLogStats stats() const;

 private:
  void FlusherLoop();
  // Group-commit eager path: leader election + ping-pong event rounds.
  LogStatus GroupCommitUpTo(uint64_t lsn);
  // Exclusive eager path: per-commit write+fsync serialized on write_io_mu_.
  LogStatus ExclusiveCommitUpTo(uint64_t lsn);
  // Writes the pending batch and (optionally) fsyncs. Serialized on
  // write_io_mu_ so device records land in LSN order. Called with mu_ NOT
  // held.
  LogStatus WriteAndMaybeFlush(bool do_fsync, bool background);
  // Appends the batch to the device image, tearing the record that crosses
  // `intact_bytes` (short write). Requires write_io_mu_ held.
  void AppendBatchToDevice(const std::vector<LogRecord>& batch,
                           uint64_t intact_bytes);
  // Crash bookkeeping; requires write_io_mu_ held.
  void CrashLocked(uint64_t seed);

  const FlushPolicy policy_;
  const CommitMode mode_;
  simio::Disk* disk_;
  const double flusher_period_us_;

  vprof::Mutex mu_;
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> written_lsn_{0};
  std::atomic<uint64_t> flushed_lsn_{0};
  uint64_t pending_bytes_ = 0;  // bytes appended but not yet written
  std::vector<LogRecord> buffer_records_;  // the insert buffer; guarded by mu_
  bool flush_in_progress_ = false;         // guarded by mu_
  uint64_t flush_round_ = 0;               // guarded by mu_

  // Ping-pong follower wake-up events, indexed by flush-round parity. The
  // event for round R is reset by the leader that finishes round R-1 and set
  // by the leader that finishes round R; Crash sets both.
  vprof::Event flush_events_[2];

  // Serializes the write+fsync path (one log file) and guards the device
  // image below.
  mutable std::mutex write_io_mu_;
  std::vector<LogRecord> device_records_;
  size_t durable_records_ = 0;    // prefix of device_records_ fsync'd
  uint64_t crash_lost_records_ = 0;

  std::atomic<bool> crashed_{false};
  std::atomic<bool> wedged_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> crash_seed_{0x5EED5EEDull};

  std::atomic<uint64_t> stat_appends_{0};
  std::atomic<uint64_t> stat_commit_waits_{0};
  std::atomic<uint64_t> stat_leader_flushes_{0};
  std::atomic<uint64_t> stat_background_flushes_{0};
  std::atomic<uint64_t> stat_batched_records_{0};
  std::atomic<uint64_t> stat_io_errors_{0};
  std::atomic<uint64_t> stat_wedges_{0};
  std::atomic<uint64_t> stat_crashes_{0};

  std::atomic<bool> stop_{false};
  std::thread flusher_;
};

}  // namespace minidb

#endif  // SRC_MINIDB_REDO_LOG_H_
