#include "src/statkit/p2_quantile.h"

#include <algorithm>
#include <cmath>

namespace statkit {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * quantile_;
  desired_[2] = 1.0 + 4.0 * quantile_;
  desired_[3] = 3.0 + 2.0 * quantile_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = quantile_ / 2.0;
  increments_[2] = quantile_;
  increments_[3] = (1.0 + quantile_) / 2.0;
  increments_[4] = 1.0;
  for (int i = 0; i < 5; ++i) {
    positions_[i] = static_cast<double>(i + 1);
    heights_[i] = 0.0;
  }
}

double P2Quantile::Parabolic(int i, double d) const {
  const double qi = heights_[i];
  const double nm = positions_[i - 1];
  const double ni = positions_[i];
  const double np = positions_[i + 1];
  return qi + d / (np - nm) *
                  ((ni - nm + d) * (heights_[i + 1] - qi) / (np - ni) +
                   (np - ni - d) * (qi - heights_[i - 1]) / (ni - nm));
}

double P2Quantile::Linear(int i, int d) const {
  return heights_[i] +
         static_cast<double>(d) * (heights_[i + d] - heights_[i]) /
             (positions_[i + d] - positions_[i]);
}

void P2Quantile::Add(double x) {
  ++count_;
  if (count_ <= 5) {
    heights_[count_ - 1] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
    }
    return;
  }

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) {
      ++k;
    }
  }

  for (int i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const int sign = d >= 0 ? 1 : -1;
      double candidate = Parabolic(i, sign);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact: nearest-rank on the sorted prefix.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const auto rank = static_cast<uint64_t>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    return sorted[std::max<uint64_t>(rank, 1) - 1];
  }
  return heights_[2];
}

}  // namespace statkit
