// AsyncClient: the front tier's non-blocking RPC pool (ROADMAP item 5).
//
// One event-loop thread multiplexes a small set of pipelined connections to
// a single backend NetServer. Any number of application threads may Call()
// concurrently: the caller stamps the outgoing frame with a trace-context
// extension ({interval_id, span_id, origin_service, send time}), posts the
// bytes to the loop, and blocks on an instrumented vprof::Event until the
// loop matches the reply by request id. The instrumented wait is the whole
// point — the caller's blocked segment carries a wake-up edge to the loop
// thread, and dist::TraceStitcher later replaces that hop with a
// generator edge to the *backend worker* that actually produced the reply,
// so the critical-path walker crosses the wire instead of dead-ending in
// epoll.
//
// CalibrateClock runs the NTP-style handshake the stitcher needs: vprof's
// TSC fastclock is run-relative per process, so backend stamps are
// meaningless on the front's axis until the offset from a
// kClockSync/kClockSyncReply exchange (offset = (t1+t3)/2 - t2 at the
// minimum-RTT sample) is applied.
#ifndef SRC_NET_ASYNC_CLIENT_H_
#define SRC_NET_ASYNC_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/event_loop.h"
#include "src/net/protocol.h"
#include "src/net/socket.h"
#include "src/vprof/runtime.h"
#include "src/vprof/sync.h"

namespace net {

// Probe name wrapping every stamped RPC on the caller thread.
inline constexpr char kRpcCallFunc[] = "rpc:call";

// One client-side span: the front half of an RPC, joined by the stitcher
// with the backend's ServerSpanRecord on (service, span_id).
struct ClientSpanRecord {
  ServiceId service = ServiceId::kUnknown;  // backend tier that was called
  uint64_t span_id = 0;
  uint64_t interval_id = 0;        // front-tier sid stamped on the request
  vprof::TimeNs send_time_ns = 0;  // caller fastclock just before the post
  vprof::TimeNs recv_time_ns = 0;  // caller fastclock after the wake
  vprof::ThreadId caller_tid = vprof::kNoThread;
  // Echoed backend half (from the reply's server-timing extension).
  bool has_server_timing = false;
  ServerTiming server;
};

// Result of CalibrateClock. offset_ns is the amount to ADD to the backend's
// fastclock stamps to express them on this process's clock; taken from the
// minimum-RTT exchange, where the midpoint assumption is tightest.
struct ClockCalibration {
  bool valid = false;
  int64_t offset_ns = 0;
  int64_t min_rtt_ns = 0;
  int rounds = 0;
};

struct AsyncClientOptions {
  uint16_t port = 0;
  size_t connections = 2;
  ServiceId service = ServiceId::kUnknown;  // backend identity (span records)
  ServiceId origin = ServiceId::kFront;     // stamped as origin_service
  int64_t call_timeout_ns = 5'000'000'000;  // 5 s
  // Receives a record per completed stamped Call, on the caller thread.
  std::function<void(const ClientSpanRecord&)> span_sink;
};

struct AsyncClientStats {
  uint64_t calls = 0;
  uint64_t failures = 0;  // timeouts, dead connections, shutdown
  uint64_t rejected = 0;  // backend shed the request (kRejected)
};

class AsyncClient {
 public:
  explicit AsyncClient(const AsyncClientOptions& options);
  ~AsyncClient();

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  // Connects every socket and spins the loop thread. False when the backend
  // is unreachable or the loop could not come up. On success the loop thread
  // has registered with vprof, so loop_tid() is immediately valid — tier
  // rosters (dist::SplitByTids) are built from it right after connecting.
  bool Connect();

  // Fails all in-flight calls, closes the sockets, joins the loop thread.
  // Idempotent.
  void Shutdown();

  // Stamps `request` with a trace-context extension (interval id from the
  // calling thread's current interval), sends it, blocks until the reply or
  // the timeout. Returns false on timeout/failure. kRejected replies are
  // returned as successes with *reply carrying the rejection — overload is
  // an answer, not a transport failure.
  bool Call(Frame request, Frame* reply);

  // Runs `rounds` kClockSync exchanges (unstamped, answered inline on the
  // backend loop thread) and derives the fastclock offset.
  ClockCalibration CalibrateClock(int rounds);

  bool connected() const { return connected_.load(std::memory_order_acquire); }
  vprof::ThreadId loop_tid() const;
  AsyncClientStats stats() const;

 private:
  struct PendingCall {
    vprof::Event done;
    Frame reply;
    bool ok = false;
  };
  struct ClientConn {
    Fd fd;
    FrameParser parser;
    std::string outbox;
    size_t out_offset = 0;
    bool wants_write = false;
    bool dead = false;
  };

  bool CallInternal(Frame request, Frame* reply);

  // --- loop-thread only ---------------------------------------------------
  void OnConnEvent(size_t conn_index, uint32_t events);
  void QueueOnConn(size_t conn_index, const std::string& bytes);
  void FlushConn(size_t conn_index);
  void KillConn(size_t conn_index);

  void CompletePending(Frame reply);
  void FailAllPending();

  AsyncClientOptions options_;
  EventLoop loop_;
  std::thread loop_thread_;
  std::vector<std::unique_ptr<ClientConn>> conns_;  // loop-thread owned

  std::atomic<bool> connected_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<size_t> next_conn_{0};

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> rejected_{0};

  mutable std::mutex mu_;  // pending map + loop tid
  std::condition_variable loop_tid_ready_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingCall>> pending_;
  vprof::ThreadId loop_tid_ = vprof::kNoThread;
};

// Process-wide span-id allocator: unique across every AsyncClient in the
// process, so stitch keys (service, span_id) never collide locally.
uint64_t NextSpanId();

}  // namespace net

#endif  // SRC_NET_ASYNC_CLIENT_H_
