// Profile minipg (the Postgres stand-in): find the WAL write lock as the
// dominant variance source, then apply distributed logging (two WAL units)
// and show the improvement — the paper's Section 4.6 case study.
//
// Build & run:  ./build/examples/profile_minipg
#include <cstdio>

#include "src/minipg/engine.h"
#include "src/statkit/summary.h"
#include "src/vprof/analysis/profiler.h"
#include "src/workload/tpcc.h"

namespace {

constexpr int kWarehouses = 8;

statkit::Summary RunOnce(int wal_units) {
  minipg::PgConfig config;
  config.wal_units = wal_units;
  minipg::PgEngine engine(config);
  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 500;
  workload::TpccDriver driver(nullptr, options);
  const workload::TpccResult result = driver.RunWith(
      [&engine](const minidb::TxnRequest& request) {
        return engine.Execute(request);
      },
      kWarehouses);
  return statkit::Summarize(result.latencies_ns);
}

}  // namespace

int main() {
  std::printf("Step 1: profile transaction latency variance (single WAL).\n\n");

  minipg::PgEngine engine(minipg::PgConfig{});
  vprof::CallGraph graph;
  minipg::PgEngine::RegisterCallGraph(&graph);

  workload::TpccOptions options;
  options.threads = 4;
  options.transactions_per_thread = 400;
  workload::TpccDriver driver(nullptr, options);
  const auto run_workload = [&] {
    driver.RunWith(
        [&engine](const minidb::TxnRequest& request) {
          return engine.Execute(request);
        },
        kWarehouses);
  };
  run_workload();  // warm-up

  vprof::Profiler profiler("exec_simple_query", &graph, run_workload);
  const vprof::ProfileResult result = profiler.Run();
  std::printf("%s\n", result.Report().c_str());

  std::printf("Step 2: the profile points at LWLockAcquireOrWait — every\n"
              "committing backend funnels through one WAL write lock. Apply\n"
              "the paper's distributed-logging fix (two WAL units):\n\n");

  const statkit::Summary single = RunOnce(1);
  const statkit::Summary dual = RunOnce(2);
  std::printf("  1 WAL:  mean=%.3f ms  var=%.4f ms^2  p99=%.3f ms\n",
              single.mean / 1e6, single.variance / 1e12, single.p99 / 1e6);
  std::printf("  2 WALs: mean=%.3f ms  var=%.4f ms^2  p99=%.3f ms\n",
              dual.mean / 1e6, dual.variance / 1e12, dual.p99 / 1e6);
  std::printf("  mean reduction: %.1f%%, variance reduction: %.1f%%\n",
              statkit::ReductionPercent(single.mean, dual.mean),
              statkit::ReductionPercent(single.variance, dual.variance));
  return 0;
}
