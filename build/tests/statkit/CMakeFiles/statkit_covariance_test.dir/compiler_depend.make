# Empty compiler generated dependencies file for statkit_covariance_test.
# This may be replaced when dependencies are built.
