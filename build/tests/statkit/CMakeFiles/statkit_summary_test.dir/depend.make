# Empty dependencies file for statkit_summary_test.
# This may be replaced when dependencies are built.
