# Empty compiler generated dependencies file for profile_multitier.
# This may be replaced when dependencies are built.
