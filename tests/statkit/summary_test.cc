#include "src/statkit/summary.h"

#include <vector>

#include <gtest/gtest.h>

namespace statkit {
namespace {

TEST(SummaryTest, EmptySample) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummaryTest, KnownValues) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 4.0);  // classic example: sd = 2
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.4);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(SummaryTest, PercentilesOrdered) {
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const Summary s = Summarize(v);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p99, 990.0, 1.5);
}

TEST(PercentileOfSortedTest, SingleElement) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 99.0), 42.0);
}

TEST(PercentileOfSortedTest, InterpolatesBetweenRanks) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(v, 100.0), 10.0);
}

TEST(ReductionPercentTest, Basics) {
  EXPECT_DOUBLE_EQ(ReductionPercent(100.0, 18.0), 82.0);
  EXPECT_DOUBLE_EQ(ReductionPercent(100.0, 150.0), -50.0);
  EXPECT_DOUBLE_EQ(ReductionPercent(0.0, 5.0), 0.0);
}

TEST(SummaryTest, ToStringMentionsKeyFields) {
  const Summary s = Summarize(std::vector<double>{1.0, 2.0, 3.0});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("mean="), std::string::npos);
  EXPECT_NE(str.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace statkit
