// Reproduces paper Figure 4 (center): effect of the redo-log flush policy
// (innodb_flush_log_at_trx_commit) on minidb, TPC-C.
//
// Paper (lazy flush): mean -18.7%, variance -27.0%, p99 -14.5%; lazy write
// improves further. Both lazy policies risk losing recently committed
// transactions on a crash (the database stays consistent).
#include "bench/common.h"

int main() {
  bench::PrintHeader("Figure 4 (center) — redo-log flush policies (minidb)");

  // Memory-resident regime: the commit-path flush is a large share of
  // transaction latency, so the policy's effect is visible (in the 2-WH
  // regime buffer-pool misses swamp it).
  const workload::TpccOptions options = bench::TpccQuick(4, 800);

  minidb::EngineConfig eager = bench::MysqlMemoryResidentConfig();
  eager.warehouses = 2;
  eager.flush_policy = minidb::FlushPolicy::kEager;
  const bench::LatencyStats base = bench::RunMinidb(eager, options);

  minidb::EngineConfig lazy_flush = eager;
  lazy_flush.flush_policy = minidb::FlushPolicy::kLazyFlush;
  const bench::LatencyStats lf = bench::RunMinidb(lazy_flush, options);

  minidb::EngineConfig lazy_write = eager;
  lazy_write.flush_policy = minidb::FlushPolicy::kLazyWrite;
  const bench::LatencyStats lw = bench::RunMinidb(lazy_write, options);

  bench::PrintStatsRow("eager flush (baseline)", base);
  bench::PrintStatsRow("lazy flush", lf);
  bench::PrintStatsRow("lazy write", lw);
  std::printf("\n  lazy flush improvement:\n");
  bench::PrintReductionRow("mean latency", base.mean_ms, lf.mean_ms, 18.7);
  bench::PrintReductionRow("latency variance", base.variance_ms2, lf.variance_ms2,
                           27.0);
  bench::PrintReductionRow("99th percentile", base.p99_ms, lf.p99_ms, 14.5);
  std::printf("\n  lazy write improvement (paper: larger than lazy flush):\n");
  bench::PrintReductionRow("mean latency", base.mean_ms, lw.mean_ms, 18.7);
  bench::PrintReductionRow("latency variance", base.variance_ms2, lw.variance_ms2,
                           27.0);
  bench::PrintReductionRow("99th percentile", base.p99_ms, lw.p99_ms, 14.5);
  return 0;
}
