#include "src/statstore/store.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <set>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "src/fault/failpoint.h"
#include "src/simio/disk.h"
#include "src/statkit/rng.h"

namespace statstore {

namespace {

constexpr uint32_t kSegmentMagic = 0x31545353u;  // "SST1" little-endian
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kHeaderBytes = 8;
constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 checksum
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

uint64_t WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string SegmentPath(const std::string& dir, uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".sst", index);
  return dir + "/" + name;
}

// Parses the index out of "seg-NNNNNNNN.sst"; 0 if the name doesn't match.
uint64_t SegmentIndex(const std::string& filename) {
  uint64_t index = 0;
  char tail[8] = {0};
  if (std::sscanf(filename.c_str(), "seg-%8" SCNu64 ".ss%1s", &index, tail) ==
          2 &&
      tail[0] == 't' && tail[1] == '\0') {
    return index;
  }
  return 0;
}

// Replays the framed records of one segment file, calling `fn` for each
// decoded sample, reading at most `max_bytes` of the file. Returns the byte
// offset one past the last intact record (>= kHeaderBytes), or 0 if the
// header itself is unreadable.
template <typename Fn>
uint64_t ReplaySegment(const std::string& path, uint64_t max_bytes, Fn&& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  uint32_t magic = 0, version = 0;
  if (max_bytes < kHeaderBytes ||
      std::fread(&magic, sizeof(magic), 1, f) != 1 ||
      std::fread(&version, sizeof(version), 1, f) != 1 ||
      magic != kSegmentMagic || version != kSegmentVersion) {
    std::fclose(f);
    return 0;
  }
  uint64_t good = kHeaderBytes;
  SegmentDecoder decoder;
  std::vector<uint8_t> payload;
  EpochSample sample;
  while (true) {
    uint32_t len = 0, checksum = 0;
    if (good + kFrameHeaderBytes > max_bytes ||
        std::fread(&len, sizeof(len), 1, f) != 1 ||
        std::fread(&checksum, sizeof(checksum), 1, f) != 1) {
      break;
    }
    if (len == 0 || len > kMaxPayloadBytes ||
        good + kFrameHeaderBytes + len > max_bytes) {
      break;
    }
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, f) != len) break;
    if (RecordChecksum(payload.data(), len) != checksum) break;
    if (!decoder.DecodeRecord(payload.data(), len, &sample)) break;
    good += kFrameHeaderBytes + len;
    fn(sample, decoder);
  }
  std::fclose(f);
  return good;
}

}  // namespace

StatStore::StatStore(const StoreOptions& options)
    : options_(options),
      fp_write_error_(options.fault_scope + "/write_error"),
      fp_torn_write_(options.fault_scope + "/torn_write"),
      fp_stall_(options.fault_scope + "/stall"),
      fp_crash_on_roll_(options.fault_scope + "/crash_on_roll") {}

StatStore::~StatStore() {
  std::lock_guard<std::mutex> lock(mu_);
  SealLocked();
}

bool StatStore::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) return false;

  // Collect segment files in index order; sets are sorted, and the
  // zero-padded names sort like their indices.
  std::set<std::string> names;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (SegmentIndex(name) != 0) names.insert(name);
  }
  if (ec) return false;

  segments_.clear();
  for (const std::string& name : names) {
    SegmentInfo info;
    info.path = options_.dir + "/" + name;
    next_segment_index_ = std::max(next_segment_index_, SegmentIndex(name) + 1);
    if (RecoverSegment(info.path, &info)) {
      segments_.push_back(std::move(info));
    }
  }
  // Recovered segments are all treated as sealed: the next Append rotates to
  // a fresh segment, so history written before a crash is never mutated.
  return true;
}

bool StatStore::RecoverSegment(const std::string& path, SegmentInfo* info) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return false;
  uint64_t records = 0;
  uint64_t first = 0, last = 0;
  const uint64_t good =
      ReplaySegment(path, size, [&](const EpochSample& sample,
                                    const SegmentDecoder&) {
        if (records == 0) first = sample.epoch;
        last = sample.epoch;
        ++records;
      });
  if (records == 0) {
    // No intact record (bad header, empty, or torn first record): the file
    // holds nothing recoverable.
    std::filesystem::remove(path, ec);
    ++stats_.dropped_segments;
    stats_.truncated_bytes += size;
    return false;
  }
  if (good < size) {
    std::filesystem::resize_file(path, good, ec);
    stats_.truncated_bytes += size - good;
  }
  stats_.recovered_records += records;
  info->first_epoch = first;
  info->last_epoch = last;
  info->records = records;
  info->bytes = good;
  return true;
}

bool StatStore::RotateLocked() {
  SealLocked();
  // Chaos crash point: die at the segment roll, after the old segment
  // sealed but before the new one exists. Reopening the store recovers
  // exactly the sealed history.
  if (fault::Triggered(fp_crash_on_roll_)) [[unlikely]] {
    wedged_ = true;
    return false;
  }
  const std::string path = SegmentPath(options_.dir, next_segment_index_);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  if (std::fwrite(&kSegmentMagic, sizeof(kSegmentMagic), 1, f) != 1 ||
      std::fwrite(&kSegmentVersion, sizeof(kSegmentVersion), 1, f) != 1) {
    std::fclose(f);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return false;
  }
  ++next_segment_index_;
  open_file_ = f;
  encoder_ = SegmentEncoder();
  SegmentInfo info;
  info.path = path;
  info.bytes = kHeaderBytes;
  segments_.push_back(std::move(info));
  ++stats_.segments_created;
  stats_.bytes_written += kHeaderBytes;
  EnforceRetentionLocked();
  return true;
}

void StatStore::SealLocked() {
  if (open_file_ == nullptr) return;
  bool seal_failed = std::fflush(open_file_) != 0;
#ifndef _WIN32
  if (!seal_failed && options_.fsync_on_seal) {
    seal_failed = ::fsync(::fileno(open_file_)) != 0;
  }
#endif
  std::fclose(open_file_);
  open_file_ = nullptr;
  if (seal_failed) {
    // fsyncgate audit: a failed flush/fsync means an unknown suffix of the
    // segment never reached the device, and retrying cannot recover it.
    // Wedge until reopen — recovery truncates at the first bad frame.
    wedged_ = true;
    ++stats_.append_errors;
    return;
  }
  ++stats_.segments_sealed;
}

void StatStore::EnforceRetentionLocked() {
  if (options_.max_segments == 0) return;
  while (segments_.size() > options_.max_segments) {
    // The front segment is always sealed here: the open segment is the
    // back, and max_segments >= 1.
    std::error_code ec;
    std::filesystem::remove(segments_.front().path, ec);
    segments_.erase(segments_.begin());
    ++stats_.segments_dropped;
  }
}

AppendStatus StatStore::Append(const EpochSample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t begin_ns = WallNs();
  if (wedged_) {
    ++stats_.append_errors;
    return AppendStatus::kWedged;
  }
  if (!segments_.empty() && segments_.back().records > 0 &&
      sample.epoch <= segments_.back().last_epoch) {
    ++stats_.append_errors;
    return AppendStatus::kBadEpoch;
  }
  if (fault::Triggered(fp_stall_)) {
    simio::SleepUs(options_.stall_us);
  }
  if (fault::Triggered(fp_write_error_)) {
    ++stats_.append_errors;
    return AppendStatus::kIoError;
  }
  if (open_file_ == nullptr && !RotateLocked()) {
    ++stats_.append_errors;
    return AppendStatus::kIoError;
  }

  for (const SeriesValue& sv : sample.values) {
    if (sv.series.size() > kMaxSeriesNameBytes) ++stats_.values_dropped;
  }
  const std::vector<uint8_t> payload = encoder_.EncodeRecord(sample);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t checksum = RecordChecksum(payload.data(), payload.size());
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size());
  std::memcpy(frame.data(), &len, sizeof(len));
  std::memcpy(frame.data() + sizeof(len), &checksum, sizeof(checksum));
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
              payload.size());

  if (fault::Triggered(fp_torn_write_)) {
    // Crash simulation: a seeded-random prefix of the frame reaches the
    // file, then the store wedges. Recovery truncates the torn record.
    statkit::Rng rng(options_.torn_seed + stats_.appends);
    const size_t keep = rng.Next() % frame.size();
    std::fwrite(frame.data(), 1, keep, open_file_);
    std::fflush(open_file_);
    wedged_ = true;
    ++stats_.append_errors;
    return AppendStatus::kIoError;
  }
  if (std::fwrite(frame.data(), 1, frame.size(), open_file_) !=
      frame.size()) {
    // A real short write leaves an unknown tail; wedge like a torn write so
    // no further record lands after garbage.
    wedged_ = true;
    ++stats_.append_errors;
    return AppendStatus::kIoError;
  }

  SegmentInfo& info = segments_.back();
  if (info.records == 0) info.first_epoch = sample.epoch;
  info.last_epoch = sample.epoch;
  ++info.records;
  info.bytes += frame.size();
  ++stats_.appends;
  stats_.bytes_written += frame.size();

  if (info.bytes >= options_.max_segment_bytes) {
    SealLocked();
  }
  const uint64_t elapsed = WallNs() - begin_ns;
  stats_.last_append_ns = elapsed;
  stats_.max_append_ns = std::max(stats_.max_append_ns, elapsed);
  return AppendStatus::kOk;
}

void StatStore::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  SealLocked();
}

std::vector<SeriesPoint> StatStore::Query(const std::string& series,
                                          uint64_t min_epoch,
                                          uint64_t max_epoch) const {
  // Snapshot the segment list (paths + stable byte counts) under the lock,
  // flushing the open segment so its buffered records are visible, then
  // replay files unlocked so long queries don't block the append path.
  std::vector<SegmentInfo> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_file_ != nullptr) std::fflush(open_file_);
    snapshot = segments_;
  }
  std::vector<SeriesPoint> out;
  for (const SegmentInfo& info : snapshot) {
    if (info.records == 0 || info.last_epoch < min_epoch ||
        info.first_epoch > max_epoch) {
      continue;
    }
    ReplaySegment(info.path, info.bytes,
                  [&](const EpochSample& sample, const SegmentDecoder&) {
                    if (sample.epoch < min_epoch || sample.epoch > max_epoch) {
                      return;
                    }
                    for (const SeriesValue& sv : sample.values) {
                      if (sv.series == series) {
                        out.push_back(SeriesPoint{sample.epoch, sv.value});
                        break;
                      }
                    }
                  });
  }
  return out;
}

std::vector<std::string> StatStore::ListSeries() const {
  std::vector<SegmentInfo> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_file_ != nullptr) std::fflush(open_file_);
    snapshot = segments_;
  }
  std::set<std::string> names;
  for (const SegmentInfo& info : snapshot) {
    ReplaySegment(info.path, info.bytes,
                  [&names](const EpochSample&, const SegmentDecoder& decoder) {
                    for (const std::string& name : decoder.series_names()) {
                      names.insert(name);
                    }
                  });
  }
  return std::vector<std::string>(names.begin(), names.end());
}

uint64_t StatStore::first_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const SegmentInfo& info : segments_) {
    if (info.records > 0) return info.first_epoch;
  }
  return 0;
}

uint64_t StatStore::last_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->records > 0) return it->last_epoch;
  }
  return 0;
}

uint64_t StatStore::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const SegmentInfo& info : segments_) total += info.records;
  return total;
}

uint64_t StatStore::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

uint64_t StatStore::disk_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const SegmentInfo& info : segments_) total += info.bytes;
  return total;
}

bool StatStore::wedged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wedged_;
}

StoreStats StatStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace statstore
