// BackendPool: the front tier's handle on one backend service.
//
// Owns a net::AsyncClient to a minidb/minipg NetServer, the clock
// calibration for that backend, and — in cold-start mode — the on-demand
// spawn of the backend itself. The serverless-variance angle (PAPERS.md):
// when the backend is spawned lazily, the first requests pay its
// construction cost, and that cost must be *rankable*, not invisible. Every
// caller that arrives before the backend is up opens a "dist:cold_start"
// probe invocation and then blocks on the instrumented spawn mutex, so the
// critical-path walker attributes the entire wait to dist:cold_start by
// coverage — the factor competes in the same Eq. 2 decomposition as lock
// waits and queue waits.
#ifndef SRC_DIST_BACKEND_POOL_H_
#define SRC_DIST_BACKEND_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "src/net/async_client.h"
#include "src/vprof/analysis/call_graph.h"
#include "src/vprof/sync.h"

namespace dist {

// Probe wrapping the on-demand backend spawn (and every waiter behind it).
inline constexpr char kColdStartFunc[] = "dist:cold_start";
// Virtual root of the merged cross-tier variance tree (DistMonitor).
inline constexpr char kDistRootFunc[] = "dist:request";

// Call-graph edges of the dist layer: httpd's request handler issues RPCs
// (process_request -> rpc:call), an RPC may pay a cold start, and it
// conceptually invokes the backend's interval root — which is how backend
// factors (lock/WAL/fil_flush under run_transaction) get graph heights for
// specificity ranking in the merged decomposition. Call after the engine's
// and httpd's RegisterCallGraph.
void RegisterDistCallGraph(vprof::CallGraph* graph,
                           std::string_view backend_root);

struct BackendPoolOptions {
  net::ServiceId service = net::ServiceId::kMinidb;
  size_t connections = 2;
  int64_t call_timeout_ns = 5'000'000'000;
  int calibrate_rounds = 16;

  // Warm mode: the backend is already listening here.
  uint16_t port = 0;

  // Cold-start mode: the backend does not exist until the first Call. spawn
  // brings it up (constructing the engine + NetServer counts as the cold
  // start) and returns its port, or 0 on failure.
  bool cold_start = false;
  std::function<uint16_t()> spawn;

  std::function<void(const net::ClientSpanRecord&)> span_sink;
};

class BackendPool {
 public:
  explicit BackendPool(const BackendPoolOptions& options);
  ~BackendPool();

  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  // Connects (and calibrates) immediately. In cold-start mode this is the
  // spawn; call it from setup code only when cold cost should *not* be
  // measured.
  bool Warm();

  // Issues one RPC, paying the cold start first if the backend is not up.
  bool Call(net::Frame request, net::Frame* reply);

  void Shutdown();

  bool ready() const { return ready_.load(std::memory_order_acquire); }
  // Valid once ready(): written before the ready flip, ordered by it.
  net::ClockCalibration calibration() const;
  vprof::ThreadId loop_tid() const;
  uint64_t cold_starts() const {
    return cold_starts_.load(std::memory_order_relaxed);
  }
  net::AsyncClientStats client_stats() const;

 private:
  bool EnsureReady();

  BackendPoolOptions options_;
  vprof::Mutex spawn_mu_;  // instrumented: waiters' blocks are attributable
  std::unique_ptr<net::AsyncClient> client_;
  net::ClockCalibration calibration_;
  std::atomic<bool> ready_{false};
  std::atomic<uint64_t> cold_starts_{0};
};

}  // namespace dist

#endif  // SRC_DIST_BACKEND_POOL_H_
