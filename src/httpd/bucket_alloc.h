// APR-style bucket allocator, the variance source of the paper's Apache case
// study (Section 4.7, Table 7).
//
// Free memory is organized in fixed-size blocks. Each connection owns a
// BucketAllocator with a small local cache; when the cache is empty it
// refills from a mutex-protected global free list, and when the global list
// is empty it falls back to a (simulated) system allocation — the expensive,
// variable path. Because *every* allocation site in the request path shares
// this machinery, moments of memory pressure slow apr_file_open,
// basic_http_header, and ap_pass_brigade together, producing the function
// co-variances the paper reports. The paper's fix — pre-allocating larger
// chunks in advance — is the `bulk_allocation` mode.
#ifndef SRC_HTTPD_BUCKET_ALLOC_H_
#define SRC_HTTPD_BUCKET_ALLOC_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace httpd {

struct AllocatorStats {
  uint64_t local_hits = 0;     // served from the connection's cache
  uint64_t global_refills = 0;  // trips to the global free list
  uint64_t system_allocs = 0;   // global list empty: slow path
};

// Process-wide free list shared by all connections.
class GlobalFreeList {
 public:
  // `initial_blocks` are pre-faulted at startup; `bulk` controls how many
  // blocks a system allocation produces (the paper's fix uses large chunks).
  GlobalFreeList(int initial_blocks, bool bulk);

  // Takes up to `count` blocks; performs a system allocation if empty.
  // Returns the number of blocks handed out.
  int Take(int count);

  // Returns blocks to the list.
  void Give(int count);

  int free_blocks() const;
  uint64_t system_allocs() const;

  // True while the simulated OS is in a memory-pressure window.
  static bool PressuredNow();

  // Test hook: forces the pressure phase. -1 = follow the clock (default),
  // 0 = always calm, 1 = always pressured.
  static void SetPressureOverrideForTesting(int override_value);

 private:
  // Simulated mmap/brk: tens of microseconds normally, slower when the OS
  // is reclaiming.
  void SystemAlloc(bool pressured);

  mutable std::mutex mu_;
  int free_blocks_ = 0;
  const int bulk_blocks_;
  const int cap_blocks_;
  uint64_t system_allocs_ = 0;
  uint64_t alloc_sequence_ = 0;  // drives the deterministic latency pattern
};

// Per-connection allocator (apr_bucket_alloc_t).
class BucketAllocator {
 public:
  BucketAllocator(GlobalFreeList* global, bool bulk);
  ~BucketAllocator();

  // Allocates one bucket's worth of memory (instrumented as
  // apr_bucket_alloc).
  void Alloc();

  // Frees one bucket back to the local cache (returning surplus globally).
  void Free();

  AllocatorStats stats() const { return stats_; }
  int local_free() const { return local_free_; }

 private:
  GlobalFreeList* global_;
  const int refill_count_;   // blocks fetched per global trip
  const int surplus_limit_;  // local cache size before returning blocks
  int local_free_ = 0;
  int outstanding_ = 0;
  AllocatorStats stats_;
};

}  // namespace httpd

#endif  // SRC_HTTPD_BUCKET_ALLOC_H_
