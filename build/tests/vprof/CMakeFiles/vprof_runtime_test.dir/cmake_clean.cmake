file(REMOVE_RECURSE
  "CMakeFiles/vprof_runtime_test.dir/runtime_test.cc.o"
  "CMakeFiles/vprof_runtime_test.dir/runtime_test.cc.o.d"
  "vprof_runtime_test"
  "vprof_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
