file(REMOVE_RECURSE
  "CMakeFiles/vprof_analysis_edge_test.dir/analysis_edge_test.cc.o"
  "CMakeFiles/vprof_analysis_edge_test.dir/analysis_edge_test.cc.o.d"
  "vprof_analysis_edge_test"
  "vprof_analysis_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vprof_analysis_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
