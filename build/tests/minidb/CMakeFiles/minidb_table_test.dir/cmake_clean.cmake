file(REMOVE_RECURSE
  "CMakeFiles/minidb_table_test.dir/table_test.cc.o"
  "CMakeFiles/minidb_table_test.dir/table_test.cc.o.d"
  "minidb_table_test"
  "minidb_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
