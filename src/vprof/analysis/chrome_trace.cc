#include "src/vprof/analysis/chrome_trace.h"

#include <cstdio>
#include <sstream>

namespace vprof {

namespace {

const char* SegmentStateName(SegmentState state) {
  switch (state) {
    case SegmentState::kExecuting:
      return "executing";
    case SegmentState::kBlocked:
      return "blocked";
    case SegmentState::kQueueWait:
      return "queue_wait";
  }
  return "?";
}

// Escapes a string for embedding in JSON.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

double ToMicros(TimeNs t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

std::string ToChromeTraceJson(const Trace& trace,
                              const ChromeTraceOptions& options) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << event;
  };

  for (const ThreadTrace& thread : trace.threads) {
    // Thread name metadata.
    {
      std::ostringstream e;
      e << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << thread.tid << ",\"args\":{\"name\":\"thread " << thread.tid
        << "\"}}";
      emit(e.str());
    }
    for (const Invocation& inv : thread.invocations) {
      const std::string name =
          inv.func < trace.function_names.size()
              ? JsonEscape(trace.function_names[inv.func])
              : "?";
      std::ostringstream e;
      e << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << thread.tid << ",\"ts\":" << ToMicros(inv.start)
        << ",\"dur\":" << ToMicros(inv.end - inv.start)
        << ",\"args\":{\"sid\":" << inv.sid << "}}";
      emit(e.str());
    }
    if (options.include_segments) {
      for (const Segment& seg : thread.segments) {
        if (seg.state == SegmentState::kExecuting) {
          continue;  // executing segments are implied by the invocations
        }
        std::ostringstream e;
        e << "{\"name\":\"" << SegmentStateName(seg.state)
          << "\",\"ph\":\"X\",\"pid\":2,\"tid\":" << thread.tid
          << ",\"ts\":" << ToMicros(seg.start)
          << ",\"dur\":" << ToMicros(seg.end - seg.start)
          << ",\"args\":{\"sid\":" << seg.sid
          << ",\"waker\":" << seg.waker_tid << "}}";
        emit(e.str());
      }
    }
    if (options.include_intervals) {
      for (const IntervalEvent& event : thread.interval_events) {
        std::ostringstream e;
        e << "{\"name\":\"interval " << event.sid << "\",\"ph\":\""
          << (event.kind == IntervalEventKind::kBegin ? "b" : "e")
          << "\",\"cat\":\"interval\",\"id\":" << event.sid
          << ",\"pid\":1,\"tid\":" << thread.tid
          << ",\"ts\":" << ToMicros(event.time) << "}";
        emit(e.str());
      }
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool WriteChromeTrace(const Trace& trace, const std::string& path,
                      const ChromeTraceOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeTraceJson(trace, options);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace vprof
