// Multi-threaded stress for the runtime's epoch handshake: worker threads
// hammer probes, interval annotations, and lazy registration while a control
// loop flips the run epoch with StartTracing/StopTracing. Guards the chunked
// buffers, the quiescence protocol, and the lazy ThreadState/ring creation
// paths. Run it under -fsanitize=thread (scripts/check.sh, VPROF_TSAN=ON)
// to turn any missing happens-before edge into a hard failure.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/vprof/probe.h"
#include "src/vprof/registry.h"
#include "src/vprof/runtime.h"

namespace vprof {
namespace {

constexpr int kWorkers = 4;
constexpr int kEpochFlips = 20;

void ProbedLeaf() {
  VPROF_FUNC("stress_leaf");
}

void ProbedParent() {
  VPROF_FUNC("stress_parent");
  ProbedLeaf();
}

// Every record in a collected trace must be internally consistent no matter
// where the epoch flip caught the workers.
void CheckTraceInvariants(const Trace& trace) {
  for (const ThreadTrace& t : trace.threads) {
    for (size_t i = 0; i < t.invocations.size(); ++i) {
      const Invocation& inv = t.invocations[i];
      ASSERT_GE(inv.start, 0);
      ASSERT_GE(inv.end, inv.start);
      ASSERT_LT(inv.parent, static_cast<int32_t>(i));
      ASSERT_GE(inv.parent, -1);
    }
    for (const Segment& seg : t.segments) {
      ASSERT_GE(seg.start, 0);
      ASSERT_GE(seg.end, seg.start);
    }
  }
}

TEST(RuntimeStressTest, ProbesRaceRunEpochFlips) {
  // The names the workers touch, pre-registered so the per-run enables
  // below always hit. Workers still race RegisterFunction via the
  // idempotent lookups and their own per-thread names.
  SetFunctionEnabled(RegisterFunction("stress_parent"), true);
  SetFunctionEnabled(RegisterFunction("stress_leaf"), true);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([w, &stop] {
      const std::string own_name = "stress_own_" + std::to_string(w);
      uint64_t spins = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Lazy registration racing the epoch flip (idempotent per name).
        const FuncId own = RegisterFunction(own_name);
        SetFunctionEnabled(own, true);
        // ThreadState creation/lookup racing Start/StopTracing.
        CurrentThread();
        for (int i = 0; i < 16; ++i) {
          ProbedParent();
        }
        if (spins++ % 8 == 0) {
          const IntervalId sid = BeginInterval(/*label=*/1);
          ProbedParent();
          EndInterval(sid);
        }
      }
    });
  }

  for (int flip = 0; flip < kEpochFlips; ++flip) {
    StartTracing();
    // Let the workers record for a moment mid-epoch.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const Trace trace = StopTracing();
    CheckTraceInvariants(trace);
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) {
    worker.join();
  }

  // One final clean run after the churn: the runtime must still record.
  StartTracing();
  ProbedParent();
  const Trace trace = StopTracing();
  CheckTraceInvariants(trace);
  EXPECT_GE(trace.invocation_count(), 2u);
  DisableAllFunctions();
}

TEST(RuntimeStressTest, FullTracerRaceWithReset) {
  // Lock-free rings racing ResetFullTracer through StartTracing, plus
  // concurrent stats reads. Counts are only checked after quiescence.
  SetFunctionEnabled(RegisterFunction("stress_parent"), true);
  std::atomic<bool> stop{false};
  EnableFullTrace(true);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ProbedParent();
        GetFullTracerStats();  // atomic reads racing ring pushes
      }
    });
  }
  for (int flip = 0; flip < 8; ++flip) {
    StartTracing();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    StopTracing();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) {
    worker.join();
  }
  EnableFullTrace(false);

  // Quiesced: a fresh run must count exactly what it records.
  StartTracing();
  EXPECT_EQ(GetFullTracerStats().events, 0u);
  StopTracing();
  DisableAllFunctions();
}

}  // namespace
}  // namespace vprof
