# Empty dependencies file for vprof_critical_path_test.
# This may be replaced when dependencies are built.
