# Empty dependencies file for vprof_factor_selection_test.
# This may be replaced when dependencies are built.
