# Empty compiler generated dependencies file for statkit_welford_test.
# This may be replaced when dependencies are built.
