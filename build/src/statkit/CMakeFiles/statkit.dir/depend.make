# Empty dependencies file for statkit.
# This may be replaced when dependencies are built.
