file(REMOVE_RECURSE
  "CMakeFiles/record_and_inspect.dir/record_and_inspect.cpp.o"
  "CMakeFiles/record_and_inspect.dir/record_and_inspect.cpp.o.d"
  "record_and_inspect"
  "record_and_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_and_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
