#include "src/simio/disk.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/failpoint.h"
#include "src/statkit/summary.h"

namespace simio {
namespace {

double ElapsedUs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

TEST(DiskTest, CountsOperations) {
  DiskConfig config;
  config.read_mu = 1.0;  // keep the test fast
  config.write_mu = 1.0;
  config.fsync_mu = 1.0;
  Disk disk(config);
  disk.Read(100);
  disk.Write(100);
  disk.Write(100);
  disk.Fsync();
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 2u);
  EXPECT_EQ(disk.fsyncs(), 1u);
}

TEST(DiskTest, FsyncSlowerThanWrite) {
  DiskConfig config;
  config.fsync_spike_prob = 0.0;
  Disk disk(config);
  double write_total = 0.0;
  double fsync_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    write_total += ElapsedUs([&] { disk.Write(256); });
    fsync_total += ElapsedUs([&] { disk.Fsync(); });
  }
  EXPECT_GT(fsync_total, write_total);
}

TEST(DiskTest, TransferTimeScalesWithBytes) {
  DiskConfig config;
  config.read_mu = 1.0;
  config.read_sigma = 0.01;
  config.bytes_per_us = 100.0;
  config.serialize_access = false;
  Disk disk(config);
  double small = 0.0;
  double large = 0.0;
  for (int i = 0; i < 10; ++i) {
    small += ElapsedUs([&] { disk.Read(100); });
    large += ElapsedUs([&] { disk.Read(100000); });  // +1000us transfer
  }
  EXPECT_GT(large, small + 5000.0);
}

TEST(DiskTest, DeterministicSeedGivesSameCounts) {
  // The RNG stream is seed-driven: two disks with the same seed spike on the
  // same fsyncs. We can't observe spikes directly, so compare total time
  // loosely: identical op sequences should take similar simulated service
  // time (sampled identically).
  DiskConfig config;
  config.fsync_mu = 2.0;
  config.seed = 7;
  Disk a(config);
  Disk b(config);
  double ta = 0.0;
  double tb = 0.0;
  for (int i = 0; i < 10; ++i) {
    ta += ElapsedUs([&] { a.Fsync(); });
  }
  for (int i = 0; i < 10; ++i) {
    tb += ElapsedUs([&] { b.Fsync(); });
  }
  EXPECT_NEAR(ta, tb, 0.5 * std::max(ta, tb) + 2000.0);
}

TEST(DiskTest, SerializedAccessQueues) {
  DiskConfig config;
  config.fsync_mu = 6.2;  // ~500us median
  config.fsync_sigma = 0.05;
  config.fsync_spike_prob = 0.0;
  config.serialize_access = true;
  Disk disk(config);
  // Two threads fsync concurrently: with a single spindle, total wall time
  // must be at least ~2 service times.
  const double elapsed = ElapsedUs([&] {
    std::thread t1([&] { disk.Fsync(); });
    std::thread t2([&] { disk.Fsync(); });
    t1.join();
    t2.join();
  });
  EXPECT_GT(elapsed, 800.0);
}

TEST(DiskTest, ZeroByteOpsSucceed) {
  DiskConfig config;
  config.read_mu = 1.0;
  config.write_mu = 1.0;
  Disk disk(config);
  const IoResult read = disk.Read(0);
  const IoResult write = disk.Write(0);
  EXPECT_TRUE(read.ok());
  EXPECT_EQ(read.bytes, 0u);
  EXPECT_TRUE(write.ok());
  EXPECT_EQ(write.bytes, 0u);
  EXPECT_EQ(disk.buffered_bytes(), 0u);
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 1u);
}

TEST(DiskTest, FsyncWithEmptyWriteBufferSucceeds) {
  DiskConfig config;
  config.fsync_mu = 1.0;
  config.fsync_spike_prob = 0.0;
  Disk disk(config);
  const IoResult result = disk.Fsync();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.bytes, 0u);  // nothing was buffered
  EXPECT_EQ(disk.fsyncs(), 1u);
}

TEST(DiskTest, BufferedBytesTrackWritesUntilFsync) {
  DiskConfig config;
  config.write_mu = 1.0;
  config.fsync_mu = 1.0;
  config.fsync_spike_prob = 0.0;
  Disk disk(config);
  disk.Write(100);
  disk.Write(28);
  EXPECT_EQ(disk.buffered_bytes(), 128u);
  const IoResult result = disk.Fsync();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.bytes, 128u);
  EXPECT_EQ(disk.buffered_bytes(), 0u);
}

TEST(DiskTest, ConcurrentOpsWithoutSerialization) {
  DiskConfig config;
  config.read_mu = 1.0;
  config.write_mu = 1.0;
  config.serialize_access = false;
  Disk disk(config);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&disk] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        EXPECT_TRUE(disk.Read(64).ok());
        EXPECT_TRUE(disk.Write(64).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(disk.reads(), kThreads * kOpsPerThread);
  EXPECT_EQ(disk.writes(), kThreads * kOpsPerThread);
  EXPECT_EQ(disk.buffered_bytes(), kThreads * kOpsPerThread * 64u);
}

TEST(DiskFaultTest, InjectedReadAndWriteErrors) {
  DiskConfig config;
  config.read_mu = 1.0;
  config.write_mu = 1.0;
  config.error_latency_us = 1.0;
  config.fault_scope = "disk_err_test";
  Disk disk(config);
  {
    fault::ScopedFailpoint read_fp("disk_err_test/read_error",
                                   fault::Trigger::EveryNth(2));
    fault::ScopedFailpoint write_fp("disk_err_test/write_error",
                                    fault::Trigger::OneShot());
    EXPECT_TRUE(disk.Read(10).ok());    // 1st hit passes
    EXPECT_FALSE(disk.Read(10).ok());   // 2nd fires
    EXPECT_FALSE(disk.Write(10).ok());  // one-shot fires immediately
    EXPECT_TRUE(disk.Write(10).ok());
  }
  EXPECT_TRUE(disk.Read(10).ok());  // disarmed
  const DiskFaultStats stats = disk.fault_stats();
  EXPECT_EQ(stats.read_errors, 1u);
  EXPECT_EQ(stats.write_errors, 1u);
  // The failed write transferred nothing into the buffer.
  EXPECT_EQ(disk.buffered_bytes(), 10u);
}

TEST(DiskFaultTest, FsyncErrorDropsDirtyBuffer) {
  DiskConfig config;
  config.write_mu = 1.0;
  config.fsync_mu = 1.0;
  config.fsync_spike_prob = 0.0;
  config.error_latency_us = 1.0;
  config.fault_scope = "disk_fsync_test";
  Disk disk(config);
  disk.Write(512);
  {
    fault::ScopedFailpoint fp("disk_fsync_test/fsync_error",
                              fault::Trigger::OneShot());
    EXPECT_FALSE(disk.Fsync().ok());
    // fsyncgate: the kernel drops the dirty pages on fsync failure, so the
    // buffered window is gone — a retry must NOT report it synced.
    EXPECT_EQ(disk.buffered_bytes(), 0u);
    const IoResult retry = disk.Fsync();  // one-shot consumed: fsync works
    EXPECT_TRUE(retry.ok());
    EXPECT_EQ(retry.bytes, 0u);  // ...but there was nothing left to sync
  }
  EXPECT_EQ(disk.fault_stats().fsync_errors, 1u);
}

TEST(DiskFaultTest, TornWriteTransfersDeterministicPrefix) {
  DiskConfig config;
  config.write_mu = 1.0;
  config.seed = 2024;
  config.fault_scope = "disk_torn_test";
  Disk a(config);
  Disk b(config);
  fault::ScopedFailpoint fp("disk_torn_test/torn_write",
                            fault::Trigger::Always());
  const IoResult ra = a.Write(1000);
  const IoResult rb = b.Write(1000);
  EXPECT_TRUE(ra.ok());
  EXPECT_LT(ra.bytes, 1000u);          // short write
  EXPECT_EQ(ra.bytes, rb.bytes);       // same seed, same tear point
  EXPECT_EQ(a.buffered_bytes(), ra.bytes);
  EXPECT_EQ(a.fault_stats().torn_writes, 1u);
}

TEST(DiskFaultTest, StallFaultAddsLatency) {
  DiskConfig config;
  config.read_mu = 1.0;
  config.read_sigma = 0.01;
  config.stall_us = 3000.0;
  config.fault_scope = "disk_stall_test";
  Disk disk(config);
  const double base = ElapsedUs([&] { disk.Read(16); });
  fault::ScopedFailpoint fp("disk_stall_test/stall", fault::Trigger::Always());
  const double stalled = ElapsedUs([&] { disk.Read(16); });
  EXPECT_GT(stalled, base + 2000.0);
  EXPECT_EQ(disk.fault_stats().stalls, 1u);
}

TEST(SleepUsTest, SleepsAtLeastRequested) {
  const double elapsed = ElapsedUs([] { SleepUs(2000.0); });
  EXPECT_GE(elapsed, 1800.0);
}

TEST(SleepUsTest, NonPositiveIsNoop) {
  const double elapsed = ElapsedUs([] {
    SleepUs(0.0);
    SleepUs(-5.0);
  });
  EXPECT_LT(elapsed, 1000.0);
}

}  // namespace
}  // namespace simio
