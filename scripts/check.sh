#!/usr/bin/env bash
# One-command verification: the tier-1 build+test cycle, then a
# ThreadSanitizer build of the vprof runtime tests so the lock-free probe
# hot path (epoch handshake, chunked buffers, full-tracer rings) is
# race-checked on every run, then an ASan+UBSan build of the fault-injection
# suite (crash recovery, torn tails, arena-cap overflow, quarantine).
# --online runs only the vprofd service suite (harvester, streaming tree,
# controller, convergence) under ThreadSanitizer — the epoch rotation and
# snapshot paths are all cross-thread.
# --statstore runs the compressed-history suite (codecs, segment IO,
# truncation-at-every-offset recovery, regression detection, vprofd wiring)
# under ASan+UBSan — the store is pointer-heavy bitstream code fed by
# fault-injected torn writes, exactly where ASan earns its keep.
# --scale runs the multi-core scale-out suite: the sharded-buffer-pool
# stress test under ThreadSanitizer (concurrent GetPage/Resize racing epoch
# flips), plus the group-commit torn-batch crash sweeps (ctest label
# "scale") in a plain build.
# --chaos runs the chaos-engineering suite (orchestrator determinism,
# 32-seed fault storms, mid-batch crash cycles under load, supervisor
# ladder, graceful shutdown — ctest label "chaos") under ASan+UBSan with a
# bounded wall-clock, since a wedged shutdown drain would otherwise hang
# the preset.
# --net runs the network front-end suite: the event-loop stress test
# (connection churn vs tracing epoch flips vs shutdown/engine-stop races)
# under ThreadSanitizer, then the full "net" ctest label (protocol fuzz,
# socket fault injection, open-loop statistics, socket-anchored variance
# integration) in a plain build.
# --dist runs the cross-service profiling suite: the concurrent
# stitching-vs-epoch-flip stress under ThreadSanitizer, then the full
# "dist" ctest label (wire-extension fuzz, async client over real localhost
# sockets, trace stitching, two-tier variance integration) under ASan+UBSan
# with a bounded wall-clock — every test opens real sockets, so a wedged
# loop thread would otherwise hang the preset.
# Usage: scripts/check.sh [--tsan-only|--asan-only|--online|--statstore|--scale|--chaos|--net|--dist]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
MODE="${1:-}"

if [[ "${MODE}" == "--online" ]]; then
  echo "== tsan: online profiling service suite =="
  # The minidb-backed convergence test is tier-1 only: minidb's single-writer
  # btree latching is not TSan-clean under concurrent TPC-C, independent of
  # the service layer under test here.
  cmake -B build-tsan -S . -DVPROF_TSAN=ON >/dev/null
  ONLINE_TARGETS=(statkit_decay_test vprof_online_tree_test vprof_service_test)
  cmake --build build-tsan -j "${JOBS}" --target "${ONLINE_TARGETS[@]}"
  (cd build-tsan &&
   TSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -R \
     '^(statkit_decay|vprof_online_tree|vprof_service)_test$')
  echo "== check.sh --online: all green =="
  exit 0
fi

if [[ "${MODE}" == "--statstore" ]]; then
  echo "== asan+ubsan: statstore suite =="
  cmake -B build-asan -S . -DVPROF_ASAN=ON >/dev/null
  STATSTORE_TARGETS=(gorilla_test store_test store_recovery_test
                     regression_test vprof_history_test
                     integration_history_regression_test)
  cmake --build build-asan -j "${JOBS}" --target "${STATSTORE_TARGETS[@]}"
  (cd build-asan &&
   ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -L statstore)
  echo "== check.sh --statstore: all green =="
  exit 0
fi

if [[ "${MODE}" == "--scale" ]]; then
  echo "== tsan: sharded buffer pool stress =="
  # The pool is stressed directly (not through the engine): minidb's
  # single-writer btree latching is not TSan-clean under concurrent TPC-C,
  # and the sharding layer is what this preset guards.
  cmake -B build-tsan -S . -DVPROF_TSAN=ON >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target minidb_scale_stress_test
  (cd build-tsan &&
   TSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -R '^minidb_scale_stress_test$')
  echo "== plain: group-commit crash sweeps (label: scale) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target minidb_scale_stress_test \
    minidb_group_commit_crash_test minipg_wal_group_commit_crash_test
  (cd build && ctest --output-on-failure -L scale)
  echo "== check.sh --scale: all green =="
  exit 0
fi

if [[ "${MODE}" == "--chaos" ]]; then
  echo "== asan+ubsan: chaos suite (label: chaos) =="
  cmake -B build-asan -S . -DVPROF_ASAN=ON >/dev/null
  CHAOS_TARGETS=(fault_chaos_test integration_chaos_storm_test
                 integration_supervisor_test integration_shutdown_test)
  cmake --build build-asan -j "${JOBS}" --target "${CHAOS_TARGETS[@]}"
  (cd build-asan &&
   ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
   timeout 900 ctest --output-on-failure -L chaos)
  echo "== check.sh --chaos: all green =="
  exit 0
fi

if [[ "${MODE}" == "--net" ]]; then
  echo "== tsan: event-loop stress (churn x epoch flips x shutdown) =="
  cmake -B build-tsan -S . -DVPROF_TSAN=ON >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target net_stress_test \
    integration_net_variance_test
  (cd build-tsan &&
   TSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -R \
     '^(net_stress|integration_net_variance)_test$')
  echo "== plain: full net suite (label: net) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target net_protocol_test \
    net_server_test net_fault_test net_openloop_test net_stress_test \
    integration_net_variance_test
  (cd build && ctest --output-on-failure -L net)
  echo "== check.sh --net: all green =="
  exit 0
fi

if [[ "${MODE}" == "--dist" ]]; then
  echo "== tsan: concurrent stitching vs epoch flips =="
  cmake -B build-tsan -S . -DVPROF_TSAN=ON >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target dist_stress_test
  (cd build-tsan &&
   TSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -R '^dist_stress_test$')
  echo "== asan+ubsan: full dist suite (label: dist) =="
  cmake -B build-asan -S . -DVPROF_ASAN=ON >/dev/null
  DIST_TARGETS=(dist_protocol_test dist_stitch_test dist_async_client_test
                dist_stress_test integration_dist_variance_test)
  cmake --build build-asan -j "${JOBS}" --target "${DIST_TARGETS[@]}"
  (cd build-asan &&
   ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
   timeout 900 ctest --output-on-failure -L dist)
  echo "== check.sh --dist: all green =="
  exit 0
fi

if [[ -z "${MODE}" ]]; then
  echo "== tier-1: build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"
  (cd build && ctest --output-on-failure -j "${JOBS}")
fi

if [[ "${MODE}" != "--asan-only" ]]; then
  echo "== tsan: vprof runtime tests =="
  cmake -B build-tsan -S . -DVPROF_TSAN=ON >/dev/null
  TSAN_TARGETS=(vprof_runtime_test vprof_stress_test vprof_registry_test
                vprof_sync_test vprof_task_queue_test)
  cmake --build build-tsan -j "${JOBS}" --target "${TSAN_TARGETS[@]}"
  (cd build-tsan &&
   TSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -R 'vprof_(runtime|stress|registry|sync|task_queue)_test')
fi

if [[ "${MODE}" != "--tsan-only" ]]; then
  echo "== asan+ubsan: fault-injection suite =="
  cmake -B build-asan -S . -DVPROF_ASAN=ON >/dev/null
  ASAN_TARGETS=(fault_failpoint_test simio_disk_test vprof_runtime_test
                minidb_redo_crash_test minipg_wal_crash_test
                httpd_server_test integration_failure_injection_test)
  cmake --build build-asan -j "${JOBS}" --target "${ASAN_TARGETS[@]}"
  (cd build-asan &&
   ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
   ctest --output-on-failure -R \
     '^(fault_failpoint|simio_disk|vprof_runtime|minidb_redo_crash|minipg_wal_crash|httpd_server|integration_failure_injection)_test$')
fi

echo "== check.sh: all green =="
